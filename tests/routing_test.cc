// Unit tests for the routing policies: local-only, round robin, locality
// failover, Waterfall, and the SLATE weighted-rules executor.
#include <gtest/gtest.h>

#include <map>

#include "app/builders.h"
#include "cluster/deployment.h"
#include "net/gcp_topology.h"
#include "routing/local_only.h"
#include "routing/locality_failover.h"
#include "routing/round_robin.h"
#include "routing/static_weights.h"
#include "routing/waterfall.h"
#include "routing/weighted_rules.h"

namespace slate {
namespace {

RouteQuery make_query(ClusterId from, const std::vector<ClusterId>& candidates,
                      ClassId cls = ClassId{0}, std::size_t node = 1,
                      ServiceId svc = ServiceId{1}) {
  RouteQuery q;
  q.cls = cls;
  q.call_node = node;
  q.child_service = svc;
  q.from = from;
  q.candidates = &candidates;
  return q;
}

// Fixed load table standing in for the runtime's live view.
class FakeLoadView final : public LoadView {
 public:
  void set(ServiceId s, ClusterId c, double rps) { loads_[{s, c}] = rps; }
  double load_rps(ServiceId s, ClusterId c) const override {
    const auto it = loads_.find({s, c});
    return it == loads_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::pair<ServiceId, ClusterId>, double> loads_;
};

// --- LocalOnly ---------------------------------------------------------------

TEST(LocalOnly, PicksLocal) {
  LocalOnlyPolicy policy;
  Rng rng(1);
  const std::vector<ClusterId> candidates{ClusterId{0}, ClusterId{1}};
  EXPECT_EQ(policy.route(make_query(ClusterId{1}, candidates), rng), ClusterId{1});
}

TEST(LocalOnly, ThrowsWhenAbsent) {
  LocalOnlyPolicy policy;
  Rng rng(1);
  const std::vector<ClusterId> candidates{ClusterId{1}};
  EXPECT_THROW(policy.route(make_query(ClusterId{0}, candidates), rng),
               std::runtime_error);
}

// --- RoundRobin ----------------------------------------------------------------

TEST(RoundRobin, CyclesThroughCandidates) {
  RoundRobinPolicy policy;
  Rng rng(1);
  const std::vector<ClusterId> candidates{ClusterId{0}, ClusterId{1}, ClusterId{2}};
  const auto q = make_query(ClusterId{0}, candidates);
  EXPECT_EQ(policy.route(q, rng), ClusterId{0});
  EXPECT_EQ(policy.route(q, rng), ClusterId{1});
  EXPECT_EQ(policy.route(q, rng), ClusterId{2});
  EXPECT_EQ(policy.route(q, rng), ClusterId{0});
}

TEST(RoundRobin, IndependentCursorsPerStream) {
  RoundRobinPolicy policy;
  Rng rng(1);
  const std::vector<ClusterId> candidates{ClusterId{0}, ClusterId{1}};
  const auto q0 = make_query(ClusterId{0}, candidates, ClassId{0});
  const auto q1 = make_query(ClusterId{0}, candidates, ClassId{1});
  EXPECT_EQ(policy.route(q0, rng), ClusterId{0});
  EXPECT_EQ(policy.route(q1, rng), ClusterId{0});  // own cursor, not shared
}

// --- LocalityFailover -------------------------------------------------------------

TEST(LocalityFailover, LocalWhenDeployed) {
  const Topology topo = make_gcp_topology();
  LocalityFailoverPolicy policy(topo);
  Rng rng(1);
  const std::vector<ClusterId> candidates{ClusterId{0}, ClusterId{3}};
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, candidates), rng), ClusterId{0});
}

TEST(LocalityFailover, NearestWhenAbsent) {
  const Topology topo = make_gcp_topology();
  LocalityFailoverPolicy policy(topo);
  Rng rng(1);
  // From OR, service only in IOW and SC: IOW (37ms) beats SC (66ms).
  const std::vector<ClusterId> candidates{ClusterId{2}, ClusterId{3}};
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, candidates), rng), ClusterId{2});
}

// --- Waterfall ---------------------------------------------------------------------

class WaterfallTest : public ::testing::Test {
 protected:
  WaterfallTest()
      : topo_(make_gcp_topology()),
        app_(make_linear_chain_app()),
        deployment_(app_, 4) {
    deployment_.deploy_everywhere(1, 500.0);
    svc_ = app_.find_service("svc-1");
    candidates_ = deployment_.clusters_for(svc_);
  }

  Topology topo_;
  Application app_;
  Deployment deployment_;
  ServiceId svc_;
  std::vector<ClusterId> candidates_;
  FakeLoadView loads_;
  Rng rng_{1};
};

TEST_F(WaterfallTest, LocalUnderCapacity) {
  WaterfallPolicy policy(topo_, deployment_, loads_);
  loads_.set(svc_, ClusterId{0}, 300.0);  // below 500
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, candidates_, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{0});
}

TEST_F(WaterfallTest, SpillsToNearestWithHeadroom) {
  WaterfallPolicy policy(topo_, deployment_, loads_);
  loads_.set(svc_, ClusterId{0}, 600.0);  // OR saturated
  // Nearest to OR is UT (15ms one-way); it has headroom.
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, candidates_, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{1});
}

TEST_F(WaterfallTest, SkipsSaturatedNearest) {
  WaterfallPolicy policy(topo_, deployment_, loads_);
  loads_.set(svc_, ClusterId{0}, 600.0);
  loads_.set(svc_, ClusterId{1}, 600.0);  // UT also saturated
  // Next nearest from OR: IOW (18.5ms).
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, candidates_, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{2});
}

TEST_F(WaterfallTest, AllSaturatedPicksLeastRelativeLoad) {
  WaterfallPolicy policy(topo_, deployment_, loads_);
  loads_.set(svc_, ClusterId{0}, 900.0);
  loads_.set(svc_, ClusterId{1}, 800.0);
  loads_.set(svc_, ClusterId{2}, 700.0);
  loads_.set(svc_, ClusterId{3}, 600.0);
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, candidates_, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{3});
}

TEST_F(WaterfallTest, ThresholdScaleShiftsSpillPoint) {
  WaterfallOptions conservative;
  conservative.threshold_scale = 0.5;  // capacity treated as 250
  WaterfallPolicy policy(topo_, deployment_, loads_, conservative);
  loads_.set(svc_, ClusterId{0}, 300.0);
  // 300 > 250: spills even though nominal capacity is 500.
  EXPECT_NE(policy.route(make_query(ClusterId{0}, candidates_, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{0});
}

TEST_F(WaterfallTest, ClassBlind) {
  // Identical decisions regardless of traffic class — the §4.4 limitation.
  WaterfallPolicy policy(topo_, deployment_, loads_);
  loads_.set(svc_, ClusterId{0}, 600.0);
  const ClusterId for_class0 = policy.route(
      make_query(ClusterId{0}, candidates_, ClassId{0}, 1, svc_), rng_);
  const ClusterId for_class1 = policy.route(
      make_query(ClusterId{0}, candidates_, ClassId{1}, 1, svc_), rng_);
  EXPECT_EQ(for_class0, for_class1);
}

TEST_F(WaterfallTest, RemoteOnlyCandidates) {
  // Child service absent locally: Waterfall spills straight to the nearest
  // candidate with headroom, like failover but load-aware.
  WaterfallPolicy policy(topo_, deployment_, loads_);
  const std::vector<ClusterId> remote_only{ClusterId{2}, ClusterId{3}};
  // IOW (37ms from OR) is closer than SC (66ms) and has headroom.
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, remote_only, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{2});
  loads_.set(svc_, ClusterId{2}, 600.0);  // IOW saturated
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, remote_only, ClassId{0}, 1, svc_),
                         rng_),
            ClusterId{3});
}

// --- StaticWeights ------------------------------------------------------------

TEST(StaticWeights, FollowsConfiguredDistribution) {
  const Topology topo = make_gcp_topology();
  StaticWeightsPolicy policy =
      StaticWeightsPolicy::make_uniform_spread(topo, 0.7);
  Rng rng(3);
  const std::vector<ClusterId> all{ClusterId{0}, ClusterId{1}, ClusterId{2},
                                   ClusterId{3}};
  int local = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (policy.route(make_query(ClusterId{0}, all), rng) == ClusterId{0}) {
      ++local;
    }
  }
  EXPECT_NEAR(local, n * 0.7, n * 0.02);
}

TEST(StaticWeights, RenormalizesOverDeployedSubset) {
  const Topology topo = make_gcp_topology();
  StaticWeightsPolicy policy =
      StaticWeightsPolicy::make_uniform_spread(topo, 0.7);
  Rng rng(3);
  // The service is absent locally: the 0.7 local share redistributes over
  // the two deployed remotes (0.1 : 0.1 -> 50/50).
  const std::vector<ClusterId> remotes{ClusterId{1}, ClusterId{3}};
  int to_ut = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (policy.route(make_query(ClusterId{0}, remotes), rng) == ClusterId{1}) {
      ++to_ut;
    }
  }
  EXPECT_NEAR(to_ut, n / 2, n * 0.02);
}

TEST(StaticWeights, ZeroConfiguredMassFallsBackToNearest) {
  Topology topo(3);
  topo.set_rtt(ClusterId{0}, ClusterId{1}, 0.010);
  topo.set_rtt(ClusterId{0}, ClusterId{2}, 0.050);
  FlatMatrix<double> dist(3, 3, 0.0);
  dist(0, 0) = 1.0;  // everything local; nothing configured for remotes
  StaticWeightsPolicy policy(topo, std::move(dist));
  Rng rng(3);
  const std::vector<ClusterId> remotes{ClusterId{1}, ClusterId{2}};
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, remotes), rng), ClusterId{1});
}

TEST(StaticWeights, BadConfigThrows) {
  const Topology topo = make_gcp_topology();
  EXPECT_THROW(StaticWeightsPolicy(topo, FlatMatrix<double>(2, 2, 0.5)),
               std::invalid_argument);
  FlatMatrix<double> negative(4, 4, 0.25);
  negative(0, 1) = -0.1;
  EXPECT_THROW(StaticWeightsPolicy(topo, std::move(negative)),
               std::invalid_argument);
  EXPECT_THROW(StaticWeightsPolicy::make_uniform_spread(topo, 1.5),
               std::invalid_argument);
}

TEST(RoundRobin, SingleCandidateAlwaysPicked) {
  RoundRobinPolicy policy;
  Rng rng(1);
  const std::vector<ClusterId> only{ClusterId{2}};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.route(make_query(ClusterId{0}, only), rng), ClusterId{2});
  }
}

// --- RouteWeights / RoutingRuleSet ------------------------------------------------

TEST(RouteWeights, PrimaryAndLookup) {
  RouteWeights w;
  w.clusters = {ClusterId{0}, ClusterId{1}, ClusterId{2}};
  w.weights = {0.2, 0.5, 0.3};
  EXPECT_EQ(w.primary(), ClusterId{1});
  EXPECT_DOUBLE_EQ(w.weight_for(ClusterId{2}), 0.3);
  EXPECT_DOUBLE_EQ(w.weight_for(ClusterId{9}), 0.0);
}

TEST(RouteWeights, Normalize) {
  RouteWeights w;
  w.clusters = {ClusterId{0}, ClusterId{1}};
  w.weights = {2.0, 6.0};
  w.normalize();
  EXPECT_DOUBLE_EQ(w.weights[0], 0.25);
  EXPECT_DOUBLE_EQ(w.weights[1], 0.75);
  RouteWeights zero;
  zero.clusters = {ClusterId{0}};
  zero.weights = {0.0};
  EXPECT_THROW(zero.normalize(), std::logic_error);
}

TEST(RoutingRuleSet, SetFindValidate) {
  RoutingRuleSet rules;
  RouteWeights w;
  w.clusters = {ClusterId{0}, ClusterId{1}};
  w.weights = {0.6, 0.4};
  rules.set_rule(ClassId{2}, 3, ClusterId{1}, w);
  EXPECT_EQ(rules.size(), 1u);
  const RouteWeights* found = rules.find(ClassId{2}, 3, ClusterId{1});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->weights[0], 0.6);
  EXPECT_EQ(rules.find(ClassId{2}, 3, ClusterId{0}), nullptr);
  EXPECT_EQ(rules.find(ClassId{0}, 3, ClusterId{1}), nullptr);
  rules.validate();
}

TEST(RoutingRuleSet, ValidateRejectsBadRules) {
  {
    RoutingRuleSet rules;
    RouteWeights w;
    w.clusters = {ClusterId{0}};
    w.weights = {-0.5};
    rules.set_rule(ClassId{0}, 1, ClusterId{0}, w);
    EXPECT_THROW(rules.validate(), std::logic_error);
  }
  {
    RoutingRuleSet rules;
    RouteWeights w;
    w.clusters = {ClusterId{0}, ClusterId{1}};
    w.weights = {0.5};  // size mismatch
    rules.set_rule(ClassId{0}, 1, ClusterId{0}, w);
    EXPECT_THROW(rules.validate(), std::logic_error);
  }
}

TEST(RoutingRuleSet, ForEachRoundTripsKeys) {
  RoutingRuleSet rules;
  RouteWeights w;
  w.clusters = {ClusterId{4}};
  w.weights = {1.0};
  rules.set_rule(ClassId{7}, 11, ClusterId{4}, w);
  bool seen = false;
  rules.for_each([&](ClassId cls, std::size_t node, ClusterId from,
                     const RouteWeights&) {
    EXPECT_EQ(cls, ClassId{7});
    EXPECT_EQ(node, 11u);
    EXPECT_EQ(from, ClusterId{4});
    seen = true;
  });
  EXPECT_TRUE(seen);
}

TEST(WeightedRulesPolicy, FollowsWeights) {
  const Topology topo = make_gcp_topology();
  WeightedRulesPolicy policy(topo);
  auto rules = std::make_shared<RoutingRuleSet>();
  RouteWeights w;
  w.clusters = {ClusterId{0}, ClusterId{1}};
  w.weights = {0.7, 0.3};
  rules->set_rule(ClassId{0}, 1, ClusterId{0}, w);
  policy.update_rules(rules);

  Rng rng(5);
  const std::vector<ClusterId> candidates{ClusterId{0}, ClusterId{1}};
  int to_local = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (policy.route(make_query(ClusterId{0}, candidates), rng) == ClusterId{0}) {
      ++to_local;
    }
  }
  EXPECT_NEAR(to_local, n * 0.7, n * 0.02);
}

TEST(WeightedRulesPolicy, FallbackWithoutRulesIsLocalityFailover) {
  const Topology topo = make_gcp_topology();
  WeightedRulesPolicy policy(topo);
  Rng rng(5);
  const std::vector<ClusterId> local_present{ClusterId{0}, ClusterId{3}};
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, local_present), rng),
            ClusterId{0});
  const std::vector<ClusterId> remote_only{ClusterId{2}, ClusterId{3}};
  EXPECT_EQ(policy.route(make_query(ClusterId{0}, remote_only), rng),
            ClusterId{2});
}

TEST(WeightedRulesPolicy, RuleSwapTakesEffect) {
  const Topology topo = make_gcp_topology();
  WeightedRulesPolicy policy(topo);
  Rng rng(5);
  const std::vector<ClusterId> candidates{ClusterId{0}, ClusterId{1}};
  const auto q = make_query(ClusterId{0}, candidates);

  auto rules_a = std::make_shared<RoutingRuleSet>();
  RouteWeights all_local;
  all_local.clusters = candidates;
  all_local.weights = {1.0, 0.0};
  rules_a->set_rule(q.cls, q.call_node, q.from, all_local);
  policy.update_rules(rules_a);
  EXPECT_EQ(policy.route(q, rng), ClusterId{0});

  auto rules_b = std::make_shared<RoutingRuleSet>();
  RouteWeights all_remote;
  all_remote.clusters = candidates;
  all_remote.weights = {0.0, 1.0};
  rules_b->set_rule(q.cls, q.call_node, q.from, all_remote);
  policy.update_rules(rules_b);
  EXPECT_EQ(policy.route(q, rng), ClusterId{1});
}

}  // namespace
}  // namespace slate
