// Negotiated-congestion rip-up-and-reroute heuristic: always feasible,
// conservation-clean, bounded optimality gap on worlds the exact LP can
// also solve.
#include <gtest/gtest.h>

#include <cmath>

#include "core/latency_model.h"
#include "core/optimizer.h"
#include "core/plan_eval.h"
#include "core/ripup_optimizer.h"
#include "topogen/topogen.h"

namespace slate {
namespace {

Scenario world(std::uint64_t seed = 3, double total_rps = 800.0) {
  TopoGenOptions options;
  options.seed = seed;
  options.clusters = 8;
  options.services = 30;
  options.classes = 6;
  options.total_rps = total_rps;
  return make_synth_scenario(options);
}

FlatMatrix<double> demand_for(const Scenario& scenario) {
  FlatMatrix<double> d(scenario.app->class_count(),
                       scenario.topology->cluster_count(), 0.0);
  for (const auto& stream : scenario.demand.streams()) {
    d(stream.cls.index(), stream.cluster.index()) +=
        scenario.demand.rate_at(stream.cls, stream.cluster, 0.0);
  }
  return d;
}

// A rip-up result is usable whenever it carries a complete rule set:
// kIterationLimit just means negotiation had not fully settled when the
// round cap hit, and the best-seen plan is still returned (the solver guard
// upgrades that status on acceptance).
void expect_ripup_usable(const OptimizerResult& result) {
  ASSERT_NE(result.rules, nullptr);
  ASSERT_TRUE(result.status == LpStatus::kOptimal ||
              result.status == LpStatus::kIterationLimit)
      << "status " << static_cast<int>(result.status);
}

void expect_plan_well_formed(const Scenario& scenario,
                             const OptimizerResult& result) {
  ASSERT_NE(result.rules, nullptr);
  EXPECT_NO_THROW(result.rules->validate());
  result.rules->for_each([&](ClassId k, std::size_t node, ClusterId,
                             const RouteWeights& w) {
    double sum = 0.0;
    const ServiceId svc =
        scenario.app->traffic_class(k).graph.node(node).service;
    for (std::size_t d = 0; d < w.clusters.size(); ++d) {
      EXPECT_GE(w.weights[d], 0.0);
      EXPECT_TRUE(std::isfinite(w.weights[d]));
      if (w.weights[d] > 0.0) {
        EXPECT_TRUE(scenario.deployment->is_deployed(svc, w.clusters[d]))
            << "weight on undeployed station";
      }
      sum += w.weights[d];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  });
}

TEST(RipupOptimizer, FeasibleAndConservationClean) {
  const Scenario scenario = world();
  const RipupRouteOptimizer ripup(*scenario.app, *scenario.deployment,
                                  *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const OptimizerResult result = ripup.optimize(model, demand_for(scenario));
  expect_ripup_usable(result);
  expect_plan_well_formed(scenario, result);
}

TEST(RipupOptimizer, CoversEveryKnobTheExactSolverCovers) {
  // Anywhere the call graph can originate a call, the heuristic must have
  // an answer — the data plane has no other plan to fall back on.
  const Scenario scenario = world();
  const RipupRouteOptimizer ripup(*scenario.app, *scenario.deployment,
                                  *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const OptimizerResult result = ripup.optimize(model, demand_for(scenario));
  expect_ripup_usable(result);
  const std::size_t C = scenario.topology->cluster_count();
  for (ClassId k : scenario.app->all_classes()) {
    const CallGraph& graph = scenario.app->traffic_class(k).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const ServiceId parent_svc =
          graph.node(graph.node(n).parent).service;
      for (std::size_t i = 0; i < C; ++i) {
        if (!scenario.deployment->is_deployed(parent_svc, ClusterId{i})) {
          continue;
        }
        EXPECT_NE(result.rules->find(k, n, ClusterId{i}), nullptr)
            << "class " << k.index() << " node " << n << " origin " << i;
      }
    }
  }
}

TEST(RipupOptimizer, GapWithinTenPercentOfExact) {
  const Scenario scenario = world();
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const FlatMatrix<double> demand = demand_for(scenario);

  const RouteOptimizer exact(*scenario.app, *scenario.deployment,
                             *scenario.topology);
  const RipupRouteOptimizer ripup(*scenario.app, *scenario.deployment,
                                  *scenario.topology);
  const OptimizerResult exact_result = exact.optimize(model, demand);
  const OptimizerResult ripup_result = ripup.optimize(model, demand);
  ASSERT_TRUE(exact_result.ok());
  expect_ripup_usable(ripup_result);

  const double exact_cost =
      evaluate_plan_cost(*scenario.app, *scenario.deployment,
                         *scenario.topology, model, demand,
                         *exact_result.rules);
  const double ripup_cost =
      evaluate_plan_cost(*scenario.app, *scenario.deployment,
                         *scenario.topology, model, demand,
                         *ripup_result.rules);
  EXPECT_GT(exact_cost, 0.0);
  EXPECT_LE(ripup_cost, exact_cost * 1.10)
      << "gap " << (ripup_cost / exact_cost - 1.0) * 100.0 << "%";
}

TEST(RipupOptimizer, OverloadedWorldStillProducesPlan) {
  // 4x the planned demand: stations cannot all stay under the cap, but the
  // plan must remain a complete distribution (load shedding is the
  // engine's job, not the router's).
  const Scenario scenario = world(5, 800.0);
  const RipupRouteOptimizer ripup(*scenario.app, *scenario.deployment,
                                  *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  FlatMatrix<double> demand = demand_for(scenario);
  for (std::size_t k = 0; k < demand.rows(); ++k) {
    for (std::size_t i = 0; i < demand.cols(); ++i) demand(k, i) *= 4.0;
  }
  const OptimizerResult result = ripup.optimize(model, demand);
  expect_ripup_usable(result);
  expect_plan_well_formed(scenario, result);
}

TEST(RipupOptimizer, DeterministicAcrossCalls) {
  const Scenario scenario = world();
  const RipupRouteOptimizer ripup(*scenario.app, *scenario.deployment,
                                  *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const FlatMatrix<double> demand = demand_for(scenario);
  const OptimizerResult a = ripup.optimize(model, demand);
  const OptimizerResult b = ripup.optimize(model, demand);
  expect_ripup_usable(a);
  expect_ripup_usable(b);
  EXPECT_EQ(a.objective, b.objective);
  a.rules->for_each([&](ClassId k, std::size_t node, ClusterId origin,
                        const RouteWeights& w) {
    const RouteWeights* other = b.rules->find(k, node, origin);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(other->clusters.size(), w.clusters.size());
    for (std::size_t d = 0; d < w.clusters.size(); ++d) {
      EXPECT_EQ(other->weights[d], w.weights[d]);
    }
  });
}

}  // namespace
}  // namespace slate
