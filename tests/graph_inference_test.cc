// Tests for call-graph reconstruction from spans, including end-to-end
// inference against traces produced by the real simulator.
#include <gtest/gtest.h>

#include "app/builders.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"
#include "telemetry/graph_inference.h"

namespace slate {
namespace {

Span make_span(std::uint32_t request, ClassId cls, ServiceId service,
               double start, double end) {
  Span span;
  span.request = RequestId{request};
  span.cls = cls;
  span.service = service;
  span.start_time = start;
  span.end_time = end;
  return span;
}

TEST(InferTree, EmptyInput) {
  const ObservedTree tree = infer_tree({});
  EXPECT_TRUE(tree.calls.empty());
  EXPECT_EQ(tree.signature(), "<empty>");
}

TEST(InferTree, SingleSpanIsRoot) {
  const ObservedTree tree =
      infer_tree({make_span(1, ClassId{0}, ServiceId{7}, 0.0, 1.0)});
  ASSERT_EQ(tree.calls.size(), 1u);
  EXPECT_EQ(tree.calls[0].parent, ObservedCall::kNoParent);
  EXPECT_EQ(tree.signature(), "root=7");
}

TEST(InferTree, NestedContainment) {
  // root [0,10] contains a [1,4] and b [5,9]; a contains c [2,3].
  const ObservedTree tree = infer_tree({
      make_span(1, ClassId{0}, ServiceId{0}, 0.0, 10.0),
      make_span(1, ClassId{0}, ServiceId{1}, 1.0, 4.0),
      make_span(1, ClassId{0}, ServiceId{2}, 2.0, 3.0),
      make_span(1, ClassId{0}, ServiceId{3}, 5.0, 9.0),
  });
  ASSERT_EQ(tree.calls.size(), 4u);
  EXPECT_EQ(tree.calls[0].service, ServiceId{0});
  EXPECT_EQ(tree.calls[1].parent, 0u);  // a under root
  EXPECT_EQ(tree.calls[2].parent, 1u);  // c under a (minimal container)
  EXPECT_EQ(tree.calls[3].parent, 0u);  // b under root
  EXPECT_EQ(tree.signature(), "root=0;0->1 x1;0->3 x1;1->2 x1");
}

TEST(InferTree, OrderIndependent) {
  std::vector<Span> spans{
      make_span(1, ClassId{0}, ServiceId{2}, 2.0, 3.0),
      make_span(1, ClassId{0}, ServiceId{0}, 0.0, 10.0),
      make_span(1, ClassId{0}, ServiceId{1}, 1.0, 4.0),
  };
  const std::string sig_a = infer_tree(spans).signature();
  std::reverse(spans.begin(), spans.end());
  EXPECT_EQ(infer_tree(spans).signature(), sig_a);
}

TEST(InferTree, RepeatedCallsCounted) {
  // Root calls service 1 twice sequentially.
  const ObservedTree tree = infer_tree({
      make_span(1, ClassId{0}, ServiceId{0}, 0.0, 10.0),
      make_span(1, ClassId{0}, ServiceId{1}, 1.0, 3.0),
      make_span(1, ClassId{0}, ServiceId{1}, 4.0, 6.0),
  });
  EXPECT_EQ(tree.signature(), "root=0;0->1 x2");
}

TEST(InferTree, TraceContextBeatsContainmentForParallelSiblings) {
  // Two parallel siblings under the root; the longer sibling's interval
  // contains the shorter's, which fools containment — context must not be.
  Span root = make_span(1, ClassId{0}, ServiceId{0}, 0.0, 10.0);
  root.span_id = 1;
  Span long_sibling = make_span(1, ClassId{0}, ServiceId{1}, 1.0, 9.0);
  long_sibling.span_id = 2;
  long_sibling.parent_span_id = 1;
  Span short_sibling = make_span(1, ClassId{0}, ServiceId{2}, 1.5, 3.0);
  short_sibling.span_id = 3;
  short_sibling.parent_span_id = 1;

  const ObservedTree with_context =
      infer_tree({root, long_sibling, short_sibling});
  EXPECT_EQ(with_context.signature(), "root=0;0->1 x1;0->2 x1");

  // Strip the context: containment mis-nests the short sibling.
  for (Span* s : {&root, &long_sibling, &short_sibling}) {
    s->span_id = 0;
    s->parent_span_id = 0;
  }
  const ObservedTree without_context =
      infer_tree({root, long_sibling, short_sibling});
  EXPECT_EQ(without_context.signature(), "root=0;0->1 x1;1->2 x1");
}

TEST(InferTree, ParallelFanoutRecoveredFromSimulatedTraces) {
  FanoutOptions fan;
  fan.width = 3;
  fan.depth = 1;
  fan.compute_mean = 2e-3;
  fan.mode = InvocationMode::kParallel;
  Scenario scenario = make_uniform_scenario(
      "fan", make_fanout_app(fan), make_two_cluster_topology(10e-3), 2);
  scenario.demand.set_rate(ClassId{0}, ClusterId{0}, 100.0);
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 15.0;
  config.warmup = 2.0;
  config.trace_capacity = 100000;
  config.seed = 43;
  Simulation sim(scenario, config);
  sim.run();

  const auto stats = analyze_call_graphs(sim.traces(), 4);
  ASSERT_EQ(stats.size(), 1u);
  // All three parallel children hang directly off the root.
  EXPECT_EQ(stats[0].modal_signature(),
            "root=0;0->1 x1;0->2 x1;0->3 x1");
  EXPECT_GT(stats[0].homogeneity(), 0.99);
}

TEST(AnalyzeCallGraphs, HomogeneousClass) {
  TraceCollector traces(100);
  for (std::uint32_t r = 0; r < 10; ++r) {
    traces.record(make_span(r, ClassId{0}, ServiceId{0}, 0.0, 10.0));
    traces.record(make_span(r, ClassId{0}, ServiceId{1}, 1.0, 4.0));
  }
  const auto stats = analyze_call_graphs(traces);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].cls, ClassId{0});
  EXPECT_EQ(stats[0].requests, 10u);
  EXPECT_DOUBLE_EQ(stats[0].homogeneity(), 1.0);
  EXPECT_EQ(stats[0].modal_signature(), "root=0;0->1 x1");
}

TEST(AnalyzeCallGraphs, MixedClassDetected) {
  TraceCollector traces(100);
  // 7 requests call service 1; 3 skip it — a class that should be split.
  for (std::uint32_t r = 0; r < 10; ++r) {
    traces.record(make_span(r, ClassId{2}, ServiceId{0}, 0.0, 10.0));
    if (r < 7) {
      traces.record(make_span(r, ClassId{2}, ServiceId{1}, 1.0, 4.0));
    }
  }
  const auto stats = analyze_call_graphs(traces);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].signatures.size(), 2u);
  EXPECT_NEAR(stats[0].homogeneity(), 0.7, 1e-9);
}

TEST(AnalyzeCallGraphs, MinSpansFilterSkipsTruncatedTraces) {
  TraceCollector traces(100);
  traces.record(make_span(1, ClassId{0}, ServiceId{0}, 0.0, 10.0));  // 1 span
  traces.record(make_span(2, ClassId{0}, ServiceId{0}, 0.0, 10.0));
  traces.record(make_span(2, ClassId{0}, ServiceId{1}, 1.0, 4.0));   // 2 spans
  const auto stats = analyze_call_graphs(traces, 2);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, 1u);
}

// --- End-to-end against the real simulator -----------------------------------

TEST(AnalyzeCallGraphs, RecoversLinearChainFromSimulatedTraces) {
  TwoClusterChainParams params;
  params.west_rps = 100.0;
  params.east_rps = 50.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 20.0;
  config.warmup = 5.0;
  config.trace_capacity = 200000;
  config.seed = 31;
  Simulation sim(scenario, config);
  sim.run();

  // The chain class has 4 nodes -> 4 spans per request.
  const auto stats = analyze_call_graphs(sim.traces(), 4);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GT(stats[0].requests, 500u);
  // Inference from timing alone recovers the exact linear chain
  // (0->1->2->3 by service id) for essentially every request.
  EXPECT_EQ(stats[0].modal_signature(), "root=0;0->1 x1;1->2 x1;2->3 x1");
  EXPECT_GT(stats[0].homogeneity(), 0.99);
}

TEST(AnalyzeCallGraphs, DistinguishesClassesInTwoClassApp) {
  const Scenario scenario = make_two_class_scenario({});
  RunConfig config;
  config.policy = PolicyKind::kWaterfall;
  config.duration = 10.0;
  config.warmup = 2.0;
  config.trace_capacity = 200000;
  config.seed = 37;
  Simulation sim(scenario, config);
  sim.run();

  const auto stats = analyze_call_graphs(sim.traces(), 2);
  ASSERT_EQ(stats.size(), 2u);
  // Both classes share the ingress->worker shape but are tracked apart.
  EXPECT_EQ(stats[0].modal_signature(), stats[1].modal_signature());
  EXPECT_GT(stats[0].homogeneity(), 0.99);
  EXPECT_GT(stats[1].homogeneity(), 0.99);
}

TEST(AnalyzeCallGraphs, FractionalMultiplicityLowersHomogeneity) {
  // A class whose sub-call happens with probability 0.5 produces two tree
  // shapes — the inference must notice.
  Application app;
  const ServiceId front = app.add_service("front");
  const ServiceId maybe = app.add_service("maybe");
  TrafficClassSpec spec;
  spec.name = "flaky";
  const std::size_t root = spec.graph.set_root(front, 1e-3, 128, 128);
  spec.graph.add_call(root, maybe, 1e-3, 128, 128, /*multiplicity=*/0.5);
  app.add_class(std::move(spec));

  Scenario scenario = make_uniform_scenario(
      "flaky", std::move(app), make_two_cluster_topology(10e-3), 2);
  scenario.demand.set_rate(ClassId{0}, ClusterId{0}, 200.0);

  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 20.0;
  config.warmup = 2.0;
  config.trace_capacity = 200000;
  config.seed = 41;
  Simulation sim(scenario, config);
  sim.run();

  const auto stats = analyze_call_graphs(sim.traces());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].signatures.size(), 2u);
  EXPECT_NEAR(stats[0].homogeneity(), 0.5, 0.05);
}

}  // namespace
}  // namespace slate
