// SLO-aware ingress admission control: token-bucket mechanics, the
// per-period adaptation loop, and the acceptance pins for
// bench/ext_admission (front-door vs mid-tree shedding, no-starvation
// under anti-phase diurnal overload, disabled-is-identical).
#include <gtest/gtest.h>

#include <stdexcept>

#include "admission/admission_controller.h"
#include "admission/admission_policy.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"
#include "util/matrix.h"
#include "workload/generators.h"

namespace slate {
namespace {

// --- Policy validation -----------------------------------------------------

TEST(AdmissionPolicy, ValidateRejectsBadKnobs) {
  AdmissionPolicy p;
  p.enabled = true;
  p.default_rate = 0.0;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = AdmissionPolicy{};
  p.enabled = true;
  p.class_rate = {100.0, 200.0, 300.0};
  EXPECT_THROW(p.validate(2), std::invalid_argument);  // out-of-range class

  p = AdmissionPolicy{};
  p.enabled = true;
  p.burst = 0.0;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = AdmissionPolicy{};
  p.enabled = true;
  p.target_attainment = 1.5;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = AdmissionPolicy{};
  p.enabled = true;
  p.gain = 1.0;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = AdmissionPolicy{};
  p.enabled = true;
  p.headroom = 0.9;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = AdmissionPolicy{};
  p.enabled = true;
  p.fair_floor = 1.5;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = AdmissionPolicy{};
  p.enabled = true;
  p.min_rate = 100.0;
  p.max_rate = 10.0;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  // A disabled policy never validates its knobs: garbage is inert.
  p = AdmissionPolicy{};
  p.default_rate = -5.0;
  EXPECT_NO_THROW(p.validate(1));
}

TEST(AdmissionPolicy, PerClassOverridesFallBackToDefaults) {
  AdmissionPolicy p;
  p.default_rate = 100.0;
  p.class_rate = {0.0, 250.0};
  p.default_slo = 1.0;
  p.class_slo = {0.2};
  EXPECT_DOUBLE_EQ(p.rate_for(ClassId{0}), 100.0);  // <= 0 falls back
  EXPECT_DOUBLE_EQ(p.rate_for(ClassId{1}), 250.0);
  EXPECT_DOUBLE_EQ(p.rate_for(ClassId{2}), 100.0);  // beyond the vector
  EXPECT_DOUBLE_EQ(p.slo_for(ClassId{0}), 0.2);
  EXPECT_DOUBLE_EQ(p.slo_for(ClassId{1}), 1.0);
}

// --- Token bucket data path ------------------------------------------------

AdmissionPolicy unit_policy() {
  AdmissionPolicy p;
  p.enabled = true;
  p.default_rate = 10.0;
  p.burst = 0.1;  // depth = max(1, 10 * 0.1) = 1 token
  p.default_slo = 1.0;
  return p;
}

TEST(AdmissionController, TokenBucketAdmitsAtConfiguredRate) {
  AdmissionController ctl(unit_policy(), 1, 1);
  const ClassId k{0};
  const ClusterId c{0};
  // The bucket starts full (one token): the first request is admitted,
  // the second at the same instant is not.
  EXPECT_TRUE(ctl.try_admit(k, c, 0.0));
  EXPECT_FALSE(ctl.try_admit(k, c, 0.0));
  // 50ms refills half a token at 10 rps: still rejected.
  EXPECT_FALSE(ctl.try_admit(k, c, 0.05));
  // At 100ms the full token is back.
  EXPECT_TRUE(ctl.try_admit(k, c, 0.1));
  // A long idle gap cannot bank more than the bucket depth.
  EXPECT_TRUE(ctl.try_admit(k, c, 10.0));
  EXPECT_FALSE(ctl.try_admit(k, c, 10.0));
}

TEST(AdmissionController, CellsAreIndependentPerClassAndCluster) {
  AdmissionController ctl(unit_policy(), 2, 2);
  // Drain (class 0, cluster 0); every other cell still has its token.
  EXPECT_TRUE(ctl.try_admit(ClassId{0}, ClusterId{0}, 0.0));
  EXPECT_FALSE(ctl.try_admit(ClassId{0}, ClusterId{0}, 0.0));
  EXPECT_TRUE(ctl.try_admit(ClassId{0}, ClusterId{1}, 0.0));
  EXPECT_TRUE(ctl.try_admit(ClassId{1}, ClusterId{0}, 0.0));
  EXPECT_TRUE(ctl.try_admit(ClassId{1}, ClusterId{1}, 0.0));
}

// --- Adaptation loop -------------------------------------------------------

AdmissionPolicy adapt_policy() {
  AdmissionPolicy p;
  p.enabled = true;
  p.default_rate = 100.0;
  p.burst = 0.01;  // depth 1: admissions don't matter for these tests
  p.default_slo = 1.0;
  p.target_attainment = 0.9;
  p.gain = 0.25;
  p.headroom = 1.25;
  p.fair_floor = 0.1;
  p.evidence = 50.0;
  return p;
}

// Offers `n` requests spread over (0, 1] and reports each admitted one
// as finished with the given e2e latency.
void offer_period(AdmissionController& ctl, std::size_t n, double e2e) {
  const ClassId k{0};
  const ClusterId c{0};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i + 1) / static_cast<double>(n);
    if (ctl.try_admit(k, c, t)) ctl.on_outcome(k, c, true, e2e);
  }
}

TEST(AdmissionController, ZeroEvidenceHoldsRateExactly) {
  AdmissionController ctl(adapt_policy(), 1, 1);
  ctl.adapt(1.0, nullptr, nullptr);
  ctl.adapt(2.0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(ctl.rate(ClassId{0}, ClusterId{0}), 100.0);
  EXPECT_EQ(ctl.adapt_rounds(), 2u);
  EXPECT_EQ(ctl.rate_raises(), 0u);
  EXPECT_EQ(ctl.rate_cuts(), 0u);
}

TEST(AdmissionController, HealthyCellOpensTowardHeadroomBoundedByGain) {
  AdmissionController ctl(adapt_policy(), 1, 1);
  // 200 offered in 1s, every admitted completion inside the SLO: the
  // cell is healthy and wants offered * headroom = 250, but the step is
  // bounded at rate * (1 + gain) = 125.
  offer_period(ctl, 200, 0.01);
  ctl.adapt(1.0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(ctl.rate(ClassId{0}, ClusterId{0}), 125.0);
  EXPECT_EQ(ctl.rate_raises(), 1u);
  EXPECT_EQ(ctl.rate_cuts(), 0u);
}

TEST(AdmissionController, MissedSloCutsProportionallyToSeverity) {
  AdmissionController ctl(adapt_policy(), 1, 1);
  // Every completion blows the 1s SLO: attainment 0, severity 1, cut to
  // rate * (1 - gain) = 75 (observed goodput 0 doesn't hold it higher).
  offer_period(ctl, 200, 5.0);
  ctl.adapt(1.0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(ctl.rate(ClassId{0}, ClusterId{0}), 75.0);
  EXPECT_EQ(ctl.rate_cuts(), 1u);
}

TEST(AdmissionController, ThinEvidenceBlendsTowardHold) {
  AdmissionPolicy p = adapt_policy();
  p.burst = 1.0;  // deep bucket: all 25 offered are admitted
  AdmissionController ctl(p, 1, 1);
  // 25 offered against an evidence scale of 50: confidence 0.5, so the
  // cut from 100 toward 75 lands halfway, at 87.5.
  offer_period(ctl, 25, 5.0);
  ctl.adapt(1.0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(ctl.rate(ClassId{0}, ClusterId{0}), 87.5);
}

TEST(AdmissionController, FairnessFloorGuaranteesAdmittedShare) {
  AdmissionPolicy p = adapt_policy();
  p.fair_floor = 0.5;
  AdmissionController ctl(p, 1, 1);
  // 200 offered, all completions miss the SLO: the loop wants to cut to
  // 75, but the floor guarantees 0.5 * 200 = 100 — the rate holds.
  offer_period(ctl, 200, 5.0);
  ctl.adapt(1.0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(ctl.rate(ClassId{0}, ClusterId{0}), 100.0);
  EXPECT_EQ(ctl.floor_raises(), 1u);
  EXPECT_EQ(ctl.rate_cuts(), 0u);
}

TEST(AdmissionController, ForecastPreWidensAheadOfPredictedRamp) {
  AdmissionController ctl(adapt_policy(), 1, 1);
  FlatMatrix<double> predicted(1, 1, 400.0);
  FlatMatrix<double> confidence(1, 1, 1.0);
  // No reactive evidence this period, but the forecaster predicts a
  // 400 rps ramp with full confidence: the bucket pre-widens to
  // predicted * headroom = 500 before the ramp arrives.
  ctl.adapt(1.0, &predicted, &confidence);
  EXPECT_DOUBLE_EQ(ctl.rate(ClassId{0}, ClusterId{0}), 500.0);
  EXPECT_EQ(ctl.forecast_widenings(), 1u);

  // Zero confidence is a no-op: the reactive rate stands.
  AdmissionController cold(adapt_policy(), 1, 1);
  confidence.fill(0.0);
  cold.adapt(1.0, &predicted, &confidence);
  EXPECT_DOUBLE_EQ(cold.rate(ClassId{0}, ClusterId{0}), 100.0);
  EXPECT_EQ(cold.forecast_widenings(), 0u);
}

// --- End-to-end pins (bench/ext_admission) ---------------------------------

Scenario burst_scenario() {
  TwoClusterChainParams params;
  params.west_rps = 420.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  const ClassId chain = scenario.app->find_class("chain");
  scenario.demand.add_step(chain, ClusterId{0}, 30.0, 1500.0);
  scenario.demand.add_step(chain, ClusterId{0}, 40.0, params.west_rps);
  return scenario;
}

// Mid-tree shedding: bounded interior queues, deadlines carried for
// accounting only — expired work is served anyway, making the wasted
// server time visible. The front-door arm adds the admission gate on
// top of the identical config.
RunConfig burst_config(bool front_door) {
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 70.0;
  config.warmup = 5.0;
  config.seed = 23;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  config.failure.retry_excludes_failed = false;
  config.overload.queue.max_queue = 512;
  config.overload.deadline.enabled = true;
  config.overload.deadline.default_deadline = 0.5;
  config.overload.deadline.propagate = false;
  if (front_door) {
    config.admission.enabled = true;
    config.admission.default_rate = 450.0;
    config.admission.burst = 0.1;
    config.admission.default_slo = 0.5;
    config.admission.target_attainment = 0.9;
    config.admission.headroom = 1.1;
    config.admission.gain = 0.5;
    config.admission.fair_floor = 0.02;
  }
  return config;
}

TEST(AdmissionPins, FrontDoorSheddingDominatesMidTreeShedding) {
  const Scenario scenario = burst_scenario();
  const ExperimentResult mid = run_experiment(scenario, burst_config(false));
  const ExperimentResult front = run_experiment(scenario, burst_config(true));

  // The mid-tree arm genuinely wastes server time on expired work...
  EXPECT_GT(mid.wasted_server_seconds, 10.0);
  EXPECT_EQ(mid.admission_rejected, 0u);
  // ...and the front door strictly dominates it: less waste at
  // equal-or-better goodput, with the excess refused at request birth.
  EXPECT_LT(front.wasted_server_seconds, mid.wasted_server_seconds);
  EXPECT_GE(front.completed, mid.completed);
  EXPECT_GE(front.goodput_in_window(55.0, 70.0),
            mid.goodput_in_window(55.0, 70.0));
  EXPECT_GT(front.admission_rejected, 1000u);
  EXPECT_GT(front.admission_adapt_rounds, 0u);
}

Scenario diurnal_scenario() {
  TwoClassParams params;
  Scenario scenario = make_two_class_scenario(params);
  const ClassId light = scenario.app->find_class("L");
  const ClassId heavy = scenario.app->find_class("H");
  const ClusterId west{0};

  DiurnalSpec l;
  l.base = 400.0;
  l.amplitude = 250.0;
  l.period = 40.0;
  l.start = 1.0;
  l.end = 90.0;
  scenario.demand.set_rate(light, west, l.base);
  add_diurnal(scenario.demand, light, west, l);

  DiurnalSpec h = l;
  h.base = 80.0;
  h.amplitude = 50.0;
  h.phase = 20.0;  // anti-phase: H peaks exactly when L troughs
  scenario.demand.set_rate(heavy, west, h.base);
  add_diurnal(scenario.demand, heavy, west, h);
  return scenario;
}

RunConfig diurnal_config(bool admission) {
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 90.0;
  config.warmup = 10.0;
  config.seed = 31;
  if (admission) {
    config.admission.enabled = true;
    config.admission.default_rate = 400.0;
    config.admission.default_slo = 0.25;
    config.admission.target_attainment = 0.9;
    config.admission.fair_floor = 0.2;
  }
  return config;
}

TEST(AdmissionPins, AdaptiveLoopHoldsSloWithoutStarvingEitherClass) {
  const Scenario scenario = diurnal_scenario();
  const ExperimentResult base = run_experiment(scenario, diurnal_config(false));
  const ExperimentResult ctl = run_experiment(scenario, diurnal_config(true));
  ASSERT_EQ(ctl.e2e_by_class.size(), 2u);

  for (std::size_t k = 0; k < 2; ++k) {
    SCOPED_TRACE(k == 0 ? "L" : "H");
    // Uncontrolled, the rotating overload pushes both classes' p99 far
    // past the 250ms SLO; the adaptation loop pulls it back by over 4x.
    const double base_p99 = base.e2e_by_class[k].quantile(0.99);
    const double ctl_p99 = ctl.e2e_by_class[k].quantile(0.99);
    EXPECT_GT(base_p99, 2.5);
    EXPECT_LT(ctl_p99, base_p99 / 4.0);

    // SLO attainment under admission stays within budget for BOTH
    // classes even while the anti-phase peaks rotate the pressure.
    const std::uint64_t done = ctl.e2e_by_class[k].count();
    ASSERT_GT(done, 0u);
    const double attainment = static_cast<double>(ctl.slo_hits_by_class[k]) /
                              static_cast<double>(done);
    EXPECT_GE(attainment, 0.6);

    // No starvation: every class's admitted share holds at or above its
    // max-min fair floor (0.2 of offered).
    const std::uint64_t admitted = ctl.admission_admitted_by_class[k];
    const std::uint64_t rejected = ctl.admission_rejected_by_class[k];
    ASSERT_GT(admitted + rejected, 0u);
    const double share = static_cast<double>(admitted) /
                         static_cast<double>(admitted + rejected);
    EXPECT_GE(share, 0.2);
  }
  // The loop was actually exercised in both directions.
  EXPECT_GT(ctl.admission_adapt_rounds, 0u);
  EXPECT_GT(ctl.admission_rate_raises, 0u);
  EXPECT_GT(ctl.admission_rate_cuts, 0u);
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.total_shed(), b.total_shed());
  EXPECT_EQ(a.deadline_cancellations, b.deadline_cancellations);
  EXPECT_EQ(a.egress_bytes, b.egress_bytes);
  ASSERT_EQ(a.e2e.samples().size(), b.e2e.samples().size());
  EXPECT_EQ(a.e2e.samples(), b.e2e.samples());
}

TEST(AdmissionPins, DisabledAdmissionIsBitIdenticalToBaseline) {
  const Scenario scenario = burst_scenario();
  const RunConfig base = burst_config(false);
  const ExperimentResult plain = run_experiment(scenario, base);

  // A populated-but-disabled config policy is inert.
  RunConfig disabled = base;
  disabled.admission = burst_config(true).admission;
  disabled.admission.enabled = false;
  expect_identical(plain, run_experiment(scenario, disabled));

  // A scenario-armed policy disarmed with ignore_scenario_admission
  // (the CLI's --no-admission) is equally inert.
  Scenario armed = burst_scenario();
  armed.admission = burst_config(true).admission;
  RunConfig ignore = base;
  ignore.ignore_scenario_admission = true;
  expect_identical(plain, run_experiment(armed, ignore));

  // Zero admission activity in all three runs.
  EXPECT_EQ(plain.admission_admitted, 0u);
  EXPECT_EQ(plain.admission_rejected, 0u);
  EXPECT_EQ(plain.admission_adapt_rounds, 0u);
}

TEST(AdmissionAccounting, ConservationHoldsWhenArmed) {
  const Scenario scenario = burst_scenario();
  const ExperimentResult r = run_experiment(scenario, burst_config(true));
  // Every arrival meets the gate exactly once: admitted or rejected.
  EXPECT_EQ(r.generated, r.admission_admitted + r.admission_rejected);
  std::uint64_t admitted = 0, rejected = 0;
  for (std::size_t k = 0; k < r.admission_admitted_by_class.size(); ++k) {
    admitted += r.admission_admitted_by_class[k];
    rejected += r.admission_rejected_by_class[k];
  }
  EXPECT_EQ(admitted, r.admission_admitted);
  EXPECT_EQ(rejected, r.admission_rejected);
  // Gate rejections never became station work.
  EXPECT_EQ(r.jobs_submitted, r.jobs_served + r.jobs_cancelled +
                                  r.jobs_evicted + r.jobs_in_flight_at_end);
}

TEST(AdmissionAccounting, DeterministicForSeed) {
  const Scenario scenario = burst_scenario();
  const ExperimentResult a = run_experiment(scenario, burst_config(true));
  const ExperimentResult b = run_experiment(scenario, burst_config(true));
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.admission_admitted, b.admission_admitted);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.admission_rate_raises, b.admission_rate_raises);
  EXPECT_EQ(a.admission_rate_cuts, b.admission_rate_cuts);
  EXPECT_EQ(a.admission_floor_raises, b.admission_floor_raises);
  EXPECT_EQ(a.e2e.samples(), b.e2e.samples());
}

}  // namespace
}  // namespace slate
