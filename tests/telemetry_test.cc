// Unit tests for telemetry: rate meters, metrics registry, sample store,
// trace collector.
#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "telemetry/sample_store.h"
#include "telemetry/span.h"
#include "util/rng.h"

namespace slate {
namespace {

TEST(RateMeter, StartsAtZero) {
  RateMeter meter(1.0);
  EXPECT_EQ(meter.rate(0.0), 0.0);
}

TEST(RateMeter, ConvergesToSteadyRate) {
  RateMeter meter(1.0);
  Rng rng(3);
  const double rate = 200.0;
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.exponential(1.0 / rate);
    meter.observe(t);
  }
  EXPECT_NEAR(meter.rate(t), rate, rate * 0.3);
}

TEST(RateMeter, DecaysWhenIdle) {
  RateMeter meter(1.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.01;  // 100/s
    meter.observe(t);
  }
  const double busy = meter.rate(t);
  const double later = meter.rate(t + 5.0);  // five time constants idle
  EXPECT_LT(later, busy * 0.05);
}

TEST(MetricsRegistry, StartEndAccounting) {
  MetricsRegistry reg(2, 2);
  reg.record_start(ServiceId{0}, ClassId{1}, 0.0);
  EXPECT_EQ(reg.inflight(ServiceId{0}), 1u);
  reg.record_end(ServiceId{0}, ClassId{1}, 0.05);
  EXPECT_EQ(reg.inflight(ServiceId{0}), 0u);
  const RequestStats& st = reg.stats(ServiceId{0}, ClassId{1});
  EXPECT_EQ(st.started, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_DOUBLE_EQ(st.latency.mean(), 0.05);
  // Other cells untouched.
  EXPECT_EQ(reg.stats(ServiceId{0}, ClassId{0}).started, 0u);
  EXPECT_EQ(reg.stats(ServiceId{1}, ClassId{1}).started, 0u);
}

TEST(MetricsRegistry, IngressAndE2e) {
  MetricsRegistry reg(1, 2);
  reg.record_ingress(ClassId{0}, 0.0);
  reg.record_ingress(ClassId{0}, 0.1);
  reg.record_ingress(ClassId{1}, 0.1);
  EXPECT_EQ(reg.ingress_count(ClassId{0}), 2u);
  EXPECT_EQ(reg.ingress_count(ClassId{1}), 1u);
  reg.record_e2e(ClassId{0}, 0.2);
  reg.record_e2e(ClassId{0}, 0.4);
  EXPECT_DOUBLE_EQ(reg.e2e(ClassId{0}).mean(), 0.3);
}

TEST(MetricsRegistry, ResetPeriodKeepsRateMeters) {
  MetricsRegistry reg(1, 1);
  for (int i = 0; i < 100; ++i) {
    reg.record_start(ServiceId{0}, ClassId{0}, i * 0.01);
  }
  reg.record_ingress(ClassId{0}, 0.5);
  reg.reset_period();
  EXPECT_EQ(reg.stats(ServiceId{0}, ClassId{0}).started, 0u);
  EXPECT_EQ(reg.ingress_count(ClassId{0}), 0u);
  EXPECT_EQ(reg.e2e(ClassId{0}).count(), 0u);
  // The service rate meter survives the period reset.
  EXPECT_GT(reg.service_rate(ServiceId{0}, 1.0), 0.0);
}

TEST(MetricsRegistry, BadIdsThrow) {
  MetricsRegistry reg(1, 1);
  EXPECT_THROW(reg.record_start(ServiceId{5}, ClassId{0}, 0.0),
               std::out_of_range);
  EXPECT_THROW(reg.record_ingress(ClassId{3}, 0.0), std::out_of_range);
  EXPECT_THROW(reg.e2e(ClassId{}), std::out_of_range);
}

TEST(SampleStore, AddAndRead) {
  SampleStore store(2, 2, 2, 4);
  LoadSample s;
  s.rps = 100.0;
  s.mean_latency = 0.01;
  store.add(ServiceId{1}, ClassId{0}, ClusterId{1}, s);
  EXPECT_EQ(store.sample_count(ServiceId{1}, ClassId{0}, ClusterId{1}), 1u);
  EXPECT_EQ(store.sample_count(ServiceId{0}, ClassId{0}, ClusterId{0}), 0u);
  const auto samples = store.samples(ServiceId{1}, ClassId{0}, ClusterId{1});
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].rps, 100.0);
}

TEST(SampleStore, RingEvictsOldest) {
  SampleStore store(1, 1, 1, 3);
  for (int i = 0; i < 5; ++i) {
    LoadSample s;
    s.time = i;
    store.add(ServiceId{0}, ClassId{0}, ClusterId{0}, s);
  }
  const auto samples = store.samples(ServiceId{0}, ClassId{0}, ClusterId{0});
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].time, 2.0);  // oldest retained
  EXPECT_DOUBLE_EQ(samples[2].time, 4.0);
}

TEST(SampleStore, Clear) {
  SampleStore store(1, 1, 1, 3);
  store.add(ServiceId{0}, ClassId{0}, ClusterId{0}, LoadSample{});
  store.clear();
  EXPECT_EQ(store.sample_count(ServiceId{0}, ClassId{0}, ClusterId{0}), 0u);
}

TEST(TraceCollector, DisabledByDefaultCapacity) {
  TraceCollector collector(0);
  EXPECT_FALSE(collector.enabled());
  collector.record(Span{});
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceCollector, RecordsAndEvicts) {
  TraceCollector collector(3);
  for (int i = 0; i < 5; ++i) {
    Span span;
    span.request = RequestId{static_cast<std::uint32_t>(i)};
    span.start_time = i;
    collector.record(span);
  }
  EXPECT_EQ(collector.size(), 3u);
  EXPECT_EQ(collector.total_recorded(), 5u);
  std::vector<double> starts;
  collector.for_each([&](const Span& s) { starts.push_back(s.start_time); });
  EXPECT_EQ(starts, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(TraceCollector, SpansForRequest) {
  TraceCollector collector(10);
  for (int i = 0; i < 6; ++i) {
    Span span;
    span.request = RequestId{static_cast<std::uint32_t>(i % 2)};
    span.call_node = static_cast<std::size_t>(i);
    collector.record(span);
  }
  const auto spans = collector.spans_for(RequestId{0});
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].call_node, 0u);
  EXPECT_EQ(spans[2].call_node, 4u);
}

TEST(TraceCollector, Clear) {
  TraceCollector collector(4);
  collector.record(Span{});
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
}

TEST(Span, DurationAndExclusive) {
  Span span;
  span.start_time = 1.0;
  span.end_time = 1.5;
  span.exclusive_time = 0.2;
  EXPECT_DOUBLE_EQ(span.duration(), 0.5);
  EXPECT_LT(span.exclusive_time, span.duration());
}

}  // namespace
}  // namespace slate
