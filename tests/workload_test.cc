// Unit tests for demand schedules and Poisson arrival generation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.h"
#include "workload/arrival.h"
#include "workload/demand.h"

namespace slate {
namespace {

TEST(DemandSchedule, ConstantRate) {
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 100.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 1e6), 100.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{1}, ClusterId{0}, 0.0), 0.0);
}

TEST(DemandSchedule, Steps) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 50.0);
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 200.0);
  d.add_step(ClassId{0}, ClusterId{0}, 20.0, 0.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 10.0), 200.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 15.0), 200.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(d.next_change_after(ClassId{0}, ClusterId{0}, 5.0), 10.0);
  EXPECT_TRUE(std::isinf(d.next_change_after(ClassId{0}, ClusterId{0}, 30.0)));
}

TEST(DemandSchedule, OutOfOrderStepsThrow) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 50.0);
  EXPECT_THROW(d.add_step(ClassId{0}, ClusterId{0}, 5.0, 60.0),
               std::invalid_argument);
  EXPECT_THROW(d.add_step(ClassId{0}, ClusterId{0}, 20.0, -1.0),
               std::invalid_argument);
}

TEST(DemandSchedule, SetRateReplacesSteps) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 50.0);
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 200.0);
  d.set_rate(ClassId{0}, ClusterId{0}, 75.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 15.0), 75.0);
}

TEST(DemandSchedule, TotalRate) {
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 100.0);
  d.set_rate(ClassId{1}, ClusterId{1}, 50.0);
  EXPECT_DOUBLE_EQ(d.total_rate_at(0.0), 150.0);
}

TEST(WorkloadDriver, PoissonCountNearExpectation) {
  Simulator sim;
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 200.0);
  std::uint64_t count = 0;
  WorkloadDriver driver(sim, Rng(1), d, 50.0,
                        [&](ClassId, ClusterId) { ++count; });
  sim.run();
  // Poisson(10000): 5 sigma = 500.
  EXPECT_NEAR(static_cast<double>(count), 10000.0, 500.0);
  EXPECT_EQ(driver.generated(), count);
}

TEST(WorkloadDriver, HonorsRateSteps) {
  Simulator sim;
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 100.0);
  d.add_step(ClassId{0}, ClusterId{0}, 50.0, 1000.0);
  std::uint64_t first_half = 0, second_half = 0;
  WorkloadDriver driver(sim, Rng(3), d, 100.0, [&](ClassId, ClusterId) {
    (sim.now() < 50.0 ? first_half : second_half)++;
  });
  sim.run();
  EXPECT_NEAR(static_cast<double>(first_half), 5000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(second_half), 50000.0, 1200.0);
}

TEST(WorkloadDriver, SilentStreamGeneratesNothing) {
  Simulator sim;
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 0.0);
  std::uint64_t count = 0;
  WorkloadDriver driver(sim, Rng(5), d, 10.0,
                        [&](ClassId, ClusterId) { ++count; });
  sim.run();
  EXPECT_EQ(count, 0u);
}

TEST(WorkloadDriver, StreamWakesUpAtStep) {
  Simulator sim;
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 0.0);
  d.add_step(ClassId{0}, ClusterId{0}, 5.0, 100.0);
  double first_arrival = -1.0;
  WorkloadDriver driver(sim, Rng(7), d, 10.0, [&](ClassId, ClusterId) {
    if (first_arrival < 0.0) first_arrival = sim.now();
  });
  sim.run();
  EXPECT_GE(first_arrival, 5.0);
  EXPECT_LT(first_arrival, 6.0);  // Exp(100) after 5.0 arrives fast
}

TEST(WorkloadDriver, DeterministicPerSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim;
    DemandSchedule d;
    d.set_rate(ClassId{0}, ClusterId{0}, 50.0);
    d.set_rate(ClassId{1}, ClusterId{1}, 80.0);
    std::vector<std::pair<double, std::uint32_t>> out;
    WorkloadDriver driver(sim, Rng(seed), d, 5.0,
                          [&](ClassId k, ClusterId) {
                            out.emplace_back(sim.now(), k.value());
                          });
    sim.run();
    return out;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));
}

TEST(WorkloadDriver, RoutesClassAndClusterThrough) {
  Simulator sim;
  DemandSchedule d;
  d.set_rate(ClassId{3}, ClusterId{2}, 100.0);
  bool checked = false;
  WorkloadDriver driver(sim, Rng(9), d, 1.0, [&](ClassId k, ClusterId c) {
    EXPECT_EQ(k, ClassId{3});
    EXPECT_EQ(c, ClusterId{2});
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace slate
