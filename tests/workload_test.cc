// Unit tests for demand schedules, time-varying generators, and Poisson
// arrival generation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.h"
#include "workload/arrival.h"
#include "workload/demand.h"
#include "workload/generators.h"

namespace slate {
namespace {

TEST(DemandSchedule, ConstantRate) {
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 100.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 1e6), 100.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{1}, ClusterId{0}, 0.0), 0.0);
}

TEST(DemandSchedule, Steps) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 50.0);
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 200.0);
  d.add_step(ClassId{0}, ClusterId{0}, 20.0, 0.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 10.0), 200.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 15.0), 200.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(d.next_change_after(ClassId{0}, ClusterId{0}, 5.0), 10.0);
  EXPECT_TRUE(std::isinf(d.next_change_after(ClassId{0}, ClusterId{0}, 30.0)));
}

TEST(DemandSchedule, OutOfOrderStepsThrow) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 50.0);
  EXPECT_THROW(d.add_step(ClassId{0}, ClusterId{0}, 5.0, 60.0),
               std::invalid_argument);
  EXPECT_THROW(d.add_step(ClassId{0}, ClusterId{0}, 20.0, -1.0),
               std::invalid_argument);
}

TEST(DemandSchedule, SetRateReplacesSteps) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 50.0);
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 200.0);
  d.set_rate(ClassId{0}, ClusterId{0}, 75.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 15.0), 75.0);
}

// Boundary semantics the workload driver and the forecast oracle both rely
// on: a step is active EXACTLY at its start time, a stream is silent before
// its first step, and the last step persists forever.
TEST(DemandSchedule, StepActiveExactlyAtBoundary) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 50.0);
  d.add_step(ClassId{0}, ClusterId{0}, 10.0, 200.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 10.0), 200.0);
  EXPECT_DOUBLE_EQ(
      d.rate_at(ClassId{0}, ClusterId{0}, std::nextafter(10.0, 0.0)), 50.0);
  // next_change_after is strictly-after: asking at the boundary itself skips
  // past it.
  EXPECT_DOUBLE_EQ(d.next_change_after(ClassId{0}, ClusterId{0}, 0.0), 10.0);
  EXPECT_TRUE(std::isinf(d.next_change_after(ClassId{0}, ClusterId{0}, 10.0)));
}

TEST(DemandSchedule, BeforeFirstStepIsSilent) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 5.0, 80.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(
      d.rate_at(ClassId{0}, ClusterId{0}, std::nextafter(5.0, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 5.0), 80.0);
  // The first step boundary is itself a change.
  EXPECT_DOUBLE_EQ(d.next_change_after(ClassId{0}, ClusterId{0}, 0.0), 5.0);
}

TEST(DemandSchedule, AfterLastStepPersists) {
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 10.0);
  d.add_step(ClassId{0}, ClusterId{0}, 30.0, 70.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 30.0), 70.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 1e9), 70.0);
  EXPECT_TRUE(std::isinf(d.next_change_after(ClassId{0}, ClusterId{0}, 30.0)));
  EXPECT_TRUE(std::isinf(d.next_change_after(ClassId{0}, ClusterId{0}, 1e9)));
}

TEST(DemandSchedule, TotalRate) {
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 100.0);
  d.set_rate(ClassId{1}, ClusterId{1}, 50.0);
  EXPECT_DOUBLE_EQ(d.total_rate_at(0.0), 150.0);
}

// --- Generator golden values -----------------------------------------------
// Each generator compiles into midpoint-sampled piecewise-constant steps;
// these pin the exact segment rates so resolution/sampling changes are loud.

TEST(Generators, DiurnalGoldenSegments) {
  DemandSchedule d;
  DiurnalSpec spec;
  spec.base = 100.0;
  spec.amplitude = 50.0;
  spec.period = 40.0;
  spec.end = 40.0;
  spec.step = 10.0;
  add_diurnal(d, ClassId{0}, ClusterId{0}, spec);
  // Segment midpoints 5, 15, 25, 35 → sin(pi/4), sin(3pi/4), sin(5pi/4),
  // sin(7pi/4) = ±sqrt(2)/2.
  const double hi = 100.0 + 50.0 * std::sqrt(2.0) / 2.0;
  const double lo = 100.0 - 50.0 * std::sqrt(2.0) / 2.0;
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 0.0), hi, 1e-9);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 12.0), hi, 1e-9);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 20.0), lo, 1e-9);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 39.9), lo, 1e-9);
  // The last segment's rate persists past end.
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 1000.0), lo, 1e-9);
  EXPECT_EQ(d.streams()[0].steps.size(), 4u);
}

TEST(Generators, DiurnalPhaseShiftsPeak) {
  // phase = period/4 moves the peak from period/4 to period/2.
  DemandSchedule d;
  DiurnalSpec spec;
  spec.base = 200.0;
  spec.amplitude = 100.0;
  spec.period = 60.0;
  spec.phase = 15.0;
  spec.end = 60.0;
  spec.step = 0.1;
  add_diurnal(d, ClassId{0}, ClusterId{0}, spec);
  // Peak at t = phase + period/4 = 30.
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 30.0), 300.0, 0.01);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 0.05), 100.0, 0.05);
}

TEST(Generators, DiurnalClampsNegativeToZero) {
  DemandSchedule d;
  DiurnalSpec spec;
  spec.base = 10.0;
  spec.amplitude = 50.0;
  spec.period = 20.0;
  spec.end = 20.0;
  spec.step = 5.0;
  add_diurnal(d, ClassId{0}, ClusterId{0}, spec);
  // Trough midpoint 12.5 → 10 + 50*sin(5pi/4) < 0 → clamped.
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 12.0), 0.0);
}

TEST(Generators, RampGoldenSegments) {
  DemandSchedule d;
  RampSpec spec;
  spec.from_rps = 100.0;
  spec.to_rps = 200.0;
  spec.start = 5.0;
  spec.duration = 10.0;
  spec.step = 2.0;
  add_ramp(d, ClassId{0}, ClusterId{0}, spec);
  // Fresh stream is silent before the ramp starts.
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 4.9), 0.0);
  // Midpoint-sampled segments: [5,7)→110, [7,9)→130, ..., [13,15)→190.
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 5.0), 110.0, 1e-9);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 8.0), 130.0, 1e-9);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 14.0), 190.0, 1e-9);
  // Lands exactly on to_rps at start+duration and holds it after.
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 15.0), 200.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 1e6), 200.0);
}

TEST(Generators, PulseGoldenSegments) {
  DemandSchedule d;
  PulseSpec spec;
  spec.base = 20.0;
  spec.peak = 500.0;
  spec.start = 10.0;
  spec.width = 5.0;
  spec.decay = 4.0;
  spec.step = 2.0;
  add_pulse(d, ClassId{0}, ClusterId{0}, spec);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 0.0), 20.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 9.9), 20.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 10.0), 500.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 14.9), 500.0);
  // Decay over [15,19): segment [15,17) mid 16 → frac 0.25 → 380,
  // segment [17,19) mid 18 → frac 0.75 → 140, then base at 19.
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 15.0), 380.0, 1e-9);
  EXPECT_NEAR(d.rate_at(ClassId{0}, ClusterId{0}, 18.0), 140.0, 1e-9);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 19.0), 20.0);
}

TEST(Generators, PulseWithoutDecaySnapsBack) {
  DemandSchedule d;
  PulseSpec spec;
  spec.base = 50.0;
  spec.peak = 300.0;
  spec.start = 2.0;
  spec.width = 3.0;
  add_pulse(d, ClassId{0}, ClusterId{0}, spec);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 4.9), 300.0);
  EXPECT_DOUBLE_EQ(d.rate_at(ClassId{0}, ClusterId{0}, 5.0), 50.0);
}

TEST(Generators, InvalidSpecsThrow) {
  DemandSchedule d;
  DiurnalSpec diurnal;  // end defaults to 0 → start !< end
  diurnal.base = 100.0;
  EXPECT_THROW(add_diurnal(d, ClassId{0}, ClusterId{0}, diurnal),
               std::invalid_argument);
  diurnal.end = 10.0;
  diurnal.period = -1.0;
  EXPECT_THROW(add_diurnal(d, ClassId{0}, ClusterId{0}, diurnal),
               std::invalid_argument);

  RampSpec ramp;  // duration defaults to 0
  ramp.from_rps = 10.0;
  ramp.to_rps = 20.0;
  EXPECT_THROW(add_ramp(d, ClassId{0}, ClusterId{0}, ramp),
               std::invalid_argument);

  PulseSpec pulse;  // width defaults to 0
  pulse.base = 10.0;
  pulse.peak = 100.0;
  EXPECT_THROW(add_pulse(d, ClassId{0}, ClusterId{0}, pulse),
               std::invalid_argument);
  pulse.width = 1.0;
  pulse.step = 1e-9;
  pulse.decay = 100.0;  // 1e11 segments → rejected
  EXPECT_THROW(add_pulse(d, ClassId{0}, ClusterId{0}, pulse),
               std::invalid_argument);
}

TEST(WorkloadDriver, PoissonCountNearExpectation) {
  Simulator sim;
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 200.0);
  std::uint64_t count = 0;
  WorkloadDriver driver(sim, Rng(1), d, 50.0,
                        [&](ClassId, ClusterId) { ++count; });
  sim.run();
  // Poisson(10000): 5 sigma = 500.
  EXPECT_NEAR(static_cast<double>(count), 10000.0, 500.0);
  EXPECT_EQ(driver.generated(), count);
}

TEST(WorkloadDriver, HonorsRateSteps) {
  Simulator sim;
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 100.0);
  d.add_step(ClassId{0}, ClusterId{0}, 50.0, 1000.0);
  std::uint64_t first_half = 0, second_half = 0;
  WorkloadDriver driver(sim, Rng(3), d, 100.0, [&](ClassId, ClusterId) {
    (sim.now() < 50.0 ? first_half : second_half)++;
  });
  sim.run();
  EXPECT_NEAR(static_cast<double>(first_half), 5000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(second_half), 50000.0, 1200.0);
}

TEST(WorkloadDriver, SilentStreamGeneratesNothing) {
  Simulator sim;
  DemandSchedule d;
  d.set_rate(ClassId{0}, ClusterId{0}, 0.0);
  std::uint64_t count = 0;
  WorkloadDriver driver(sim, Rng(5), d, 10.0,
                        [&](ClassId, ClusterId) { ++count; });
  sim.run();
  EXPECT_EQ(count, 0u);
}

TEST(WorkloadDriver, StreamWakesUpAtStep) {
  Simulator sim;
  DemandSchedule d;
  d.add_step(ClassId{0}, ClusterId{0}, 0.0, 0.0);
  d.add_step(ClassId{0}, ClusterId{0}, 5.0, 100.0);
  double first_arrival = -1.0;
  WorkloadDriver driver(sim, Rng(7), d, 10.0, [&](ClassId, ClusterId) {
    if (first_arrival < 0.0) first_arrival = sim.now();
  });
  sim.run();
  EXPECT_GE(first_arrival, 5.0);
  EXPECT_LT(first_arrival, 6.0);  // Exp(100) after 5.0 arrives fast
}

TEST(WorkloadDriver, DeterministicPerSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim;
    DemandSchedule d;
    d.set_rate(ClassId{0}, ClusterId{0}, 50.0);
    d.set_rate(ClassId{1}, ClusterId{1}, 80.0);
    std::vector<std::pair<double, std::uint32_t>> out;
    WorkloadDriver driver(sim, Rng(seed), d, 5.0,
                          [&](ClassId k, ClusterId) {
                            out.emplace_back(sim.now(), k.value());
                          });
    sim.run();
    return out;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));
}

TEST(WorkloadDriver, RoutesClassAndClusterThrough) {
  Simulator sim;
  DemandSchedule d;
  d.set_rate(ClassId{3}, ClusterId{2}, 100.0);
  bool checked = false;
  WorkloadDriver driver(sim, Rng(9), d, 1.0, [&](ClassId k, ClusterId c) {
    EXPECT_EQ(k, ClassId{3});
    EXPECT_EQ(c, ClusterId{2});
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace slate
