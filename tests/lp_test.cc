// Tests for the LP/MILP solver: simplex on known programs, edge cases,
// randomized feasibility/optimality properties, branch & bound, and the
// piecewise-linear convexifier.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/branch_and_bound.h"
#include "lp/model.h"
#include "lp/piecewise.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace slate {
namespace {

// --- Textbook LPs -----------------------------------------------------------

TEST(Simplex, SimpleMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum (2, 6) -> 36.
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const int x = lp.add_variable(0, kLpInfinity, 3.0, "x");
  const int y = lp.add_variable(0, kLpInfinity, 5.0, "y");
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[y], 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3; optimum (7, 3) -> 23.
  LpModel lp;
  const int x = lp.add_variable(2.0, kLpInfinity, 2.0, "x");
  const int y = lp.add_variable(3.0, kLpInfinity, 3.0, "y");
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 10.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 23.0, 1e-7);
  EXPECT_NEAR(sol.values[x], 7.0, 1e-7);
  EXPECT_NEAR(sol.values[y], 3.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 5, x <= 3; optimum (3, 2) -> 7.
  LpModel lp;
  const int x = lp.add_variable(0, 3.0, 1.0, "x");
  const int y = lp.add_variable(0, kLpInfinity, 2.0, "y");
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 5.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 7.0, 1e-7);
}

TEST(Simplex, Infeasible) {
  LpModel lp;
  const int x = lp.add_variable(0, kLpInfinity, 1.0, "x");
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, Unbounded) {
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const int x = lp.add_variable(0, kLpInfinity, 1.0, "x");
  lp.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -4  (i.e. x >= 4).
  LpModel lp;
  const int x = lp.add_variable(0, kLpInfinity, 1.0, "x");
  lp.add_constraint({{x, -1.0}}, Relation::kLessEqual, -4.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.values[x], 4.0, 1e-7);
}

TEST(Simplex, FreeVariable) {
  // min |shape|: min y s.t. y >= x - 2, y >= 2 - x with free x: optimum 0.
  LpModel lp;
  const int x = lp.add_variable(-kLpInfinity, kLpInfinity, 0.0, "x");
  const int y = lp.add_variable(-kLpInfinity, kLpInfinity, 1.0, "y");
  lp.add_constraint({{y, 1.0}, {x, -1.0}}, Relation::kGreaterEqual, -2.0);
  lp.add_constraint({{y, 1.0}, {x, 1.0}}, Relation::kGreaterEqual, 2.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 0.0, 1e-7);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-6);
}

TEST(Simplex, NegativeLowerBound) {
  // min x with x in [-5, 5] -> -5.
  LpModel lp;
  const int x = lp.add_variable(-5.0, 5.0, 1.0, "x");
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 100.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.values[x], -5.0, 1e-7);
}

TEST(Simplex, UpperBoundOnlyVariable) {
  // max x with x <= 7 as a bound, no rows.
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const int x = lp.add_variable(0.0, 7.0, 1.0, "x");
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.values[x], 7.0, 1e-7);
}

TEST(Simplex, DegenerateCycleGuard) {
  // Beale's classic cycling example (with Bland fallback it must terminate).
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMinimize);
  const int x1 = lp.add_variable(0, kLpInfinity, -0.75, "x1");
  const int x2 = lp.add_variable(0, kLpInfinity, 150.0, "x2");
  const int x3 = lp.add_variable(0, kLpInfinity, -0.02, "x3");
  const int x4 = lp.add_variable(0, kLpInfinity, 6.0, "x4");
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                    Relation::kLessEqual, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                    Relation::kLessEqual, 0.0);
  lp.add_constraint({{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicate equality rows exercise the artificial-purge path.
  LpModel lp;
  const int x = lp.add_variable(0, kLpInfinity, 1.0, "x");
  const int y = lp.add_variable(0, kLpInfinity, 1.0, "y");
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kEqual, 8.0);  // redundant
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);
}

TEST(Simplex, DuplicateTermsMerged) {
  LpModel lp;
  const int x = lp.add_variable(0, kLpInfinity, 1.0, "x");
  // x + x <= 6 -> x <= 3 after merging.
  lp.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::kLessEqual, 6.0);
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const LpSolution sol = solve_lp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.values[x], 3.0, 1e-7);
}

TEST(Simplex, BlandFromTheStartStillSolves) {
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const int x = lp.add_variable(0, kLpInfinity, 3.0, "x");
  const int y = lp.add_variable(0, kLpInfinity, 5.0, "y");
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  SimplexOptions options;
  options.bland_after = 0;  // Bland's rule for every pivot
  const LpSolution sol = solve_lp(lp, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
}

TEST(Simplex, IterationLimitReported) {
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  std::vector<LinearTerm> row;
  for (int i = 0; i < 12; ++i) {
    const int v = lp.add_variable(0, 1.0, 1.0 + 0.1 * i);
    row.push_back({v, 1.0});
  }
  lp.add_constraint(std::move(row), Relation::kLessEqual, 6.0);
  SimplexOptions options;
  options.max_iterations = 1;  // far too few
  const LpSolution sol = solve_lp(lp, options);
  EXPECT_EQ(sol.status, LpStatus::kIterationLimit);
}

TEST(Milp, NodeLimitReturnsIncumbentWithLimitStatus) {
  // A knapsack big enough that one node cannot prove optimality.
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  std::vector<LinearTerm> row;
  Rng rng(77);
  for (int i = 0; i < 16; ++i) {
    const int v = lp.add_variable(0.0, 1.0, rng.uniform(1.0, 10.0));
    lp.set_integer(v);
    row.push_back({v, rng.uniform(1.0, 10.0)});
  }
  lp.add_constraint(std::move(row), Relation::kLessEqual, 30.0);
  MilpOptions options;
  options.max_nodes = 2;
  const LpSolution sol = solve_milp(lp, options);
  EXPECT_NE(sol.status, LpStatus::kOptimal);
}

// Randomized property test: generate LPs with a known feasible point; the
// solver must (a) report optimal, (b) return a feasible solution, (c) beat
// or match the known point's objective.
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, FeasibleAndNoWorseThanWitness) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(rng.uniform_u64(6));
  const int m = 1 + static_cast<int>(rng.uniform_u64(8));

  LpModel lp;
  std::vector<double> witness(n);
  for (int j = 0; j < n; ++j) {
    witness[j] = rng.uniform(0.0, 5.0);
    lp.add_variable(0.0, 10.0, rng.uniform(-3.0, 3.0));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<LinearTerm> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({j, c});
      lhs += c * witness[j];
    }
    // Place the rhs so the witness satisfies the row with slack.
    lp.add_constraint(std::move(terms), Relation::kLessEqual,
                      lhs + rng.uniform(0.1, 2.0));
  }

  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.is_feasible(sol.values, 1e-6));
  EXPECT_LE(sol.objective, lp.objective_value(witness) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 40));

// Random LPs with equality rows (exercising phase 1 + artificial purge):
// built from a known solution so feasibility is guaranteed.
class RandomEqualityLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomEqualityLpTest, SolvesAndRespectsEqualities) {
  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const int n = 3 + static_cast<int>(rng.uniform_u64(5));
  LpModel lp;
  std::vector<double> witness(n);
  for (int j = 0; j < n; ++j) {
    witness[j] = rng.uniform(0.0, 4.0);
    lp.add_variable(0.0, 10.0, rng.uniform(-2.0, 2.0));
  }
  const int eqs = 1 + static_cast<int>(rng.uniform_u64(3));
  for (int i = 0; i < eqs; ++i) {
    std::vector<LinearTerm> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double c = rng.uniform(-1.5, 1.5);
      terms.push_back({j, c});
      lhs += c * witness[j];
    }
    lp.add_constraint(std::move(terms), Relation::kEqual, lhs);
  }
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.is_feasible(sol.values, 1e-5));
  EXPECT_LE(sol.objective, lp.objective_value(witness) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEqualityLpTest, ::testing::Range(0, 25));

// --- Branch & bound -----------------------------------------------------------

TEST(Milp, IntegerKnapsack) {
  // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binary -> optimum 21
  // (a=0? classic answer: items 1,2 (a,b): 8+11=19 w=12; b+c+d=21 w=14).
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<int> vars;
  std::vector<LinearTerm> row;
  for (int i = 0; i < 4; ++i) {
    const int v = lp.add_variable(0.0, 1.0, values[i]);
    lp.set_integer(v);
    vars.push_back(v);
    row.push_back({v, weights[i]});
  }
  lp.add_constraint(std::move(row), Relation::kLessEqual, 14.0);
  const LpSolution sol = solve_milp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 21.0, 1e-6);
  for (int v : vars) {
    const double x = sol.values[v];
    EXPECT_NEAR(x, std::round(x), 1e-6);
  }
}

TEST(Milp, IntegralityGapVsRelaxation) {
  // max x s.t. 2x <= 3, x integer -> 1 (relaxation gives 1.5).
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const int x = lp.add_variable(0.0, kLpInfinity, 1.0);
  lp.set_integer(x);
  lp.add_constraint({{x, 2.0}}, Relation::kLessEqual, 3.0);
  const LpSolution relaxed = solve_lp(lp);
  EXPECT_NEAR(relaxed.objective, 1.5, 1e-7);
  const LpSolution integral = solve_milp(lp);
  ASSERT_TRUE(integral.ok());
  EXPECT_NEAR(integral.objective, 1.0, 1e-7);
}

TEST(Milp, InfeasibleInteger) {
  // 0.4 <= x <= 0.6, x integer: LP feasible, MILP infeasible.
  LpModel lp;
  const int x = lp.add_variable(0.4, 0.6, 1.0);
  lp.set_integer(x);
  EXPECT_TRUE(solve_lp(lp).ok());
  EXPECT_EQ(solve_milp(lp).status, LpStatus::kInfeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // min 3x + y, x + y >= 3.5, x integer, y continuous in [0, 1].
  // x = 3 forces y >= 0.5 -> objective 9.5 (x = 4 would give 12).
  LpModel lp;
  const int x = lp.add_variable(0.0, kLpInfinity, 3.0);
  lp.set_integer(x);
  const int y = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 3.5);
  const LpSolution sol = solve_milp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 9.5, 1e-6);
  EXPECT_NEAR(sol.values[x], 3.0, 1e-6);
  EXPECT_NEAR(sol.values[y], 0.5, 1e-6);
}

TEST(Milp, PureLpFastPath) {
  LpModel lp;
  lp.set_objective_sense(ObjectiveSense::kMaximize);
  const int x = lp.add_variable(0.0, 2.5, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 10.0);
  MilpStats stats;
  const LpSolution sol = solve_milp(lp, {}, &stats);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.values[x], 2.5, 1e-7);
  EXPECT_EQ(stats.nodes_explored, 1u);
}

// --- LpModel helpers ------------------------------------------------------------

TEST(LpModel, IsFeasibleChecksEverything) {
  LpModel lp;
  const int x = lp.add_variable(0.0, 5.0, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_TRUE(lp.is_feasible({3.0}));
  EXPECT_FALSE(lp.is_feasible({1.0}));   // violates row
  EXPECT_FALSE(lp.is_feasible({6.0}));   // violates bound
  EXPECT_FALSE(lp.is_feasible({}));      // wrong arity
}

TEST(LpModel, InvertedBoundsThrow) {
  LpModel lp;
  EXPECT_THROW(lp.add_variable(2.0, 1.0, 0.0), std::invalid_argument);
  const int x = lp.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(lp.set_bounds(x, 3.0, 2.0), std::invalid_argument);
}

TEST(LpModel, UnknownVariableInRowThrows) {
  LpModel lp;
  lp.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::kEqual, 0.0),
               std::out_of_range);
}

// --- Piecewise-linear convexifier --------------------------------------------------

TEST(Piecewise, QueueCostValues) {
  EXPECT_EQ(queue_cost(0.0), 0.0);
  EXPECT_NEAR(queue_cost(0.5), 0.5, 1e-12);         // 0.25 / 0.5
  EXPECT_NEAR(queue_cost(0.9), 8.1, 1e-9);          // 0.81 / 0.1
  EXPECT_TRUE(std::isinf(queue_cost(1.0)));
}

TEST(Piecewise, TangentsUnderestimateConvexFunction) {
  const auto tangents = queue_cost_tangents(0.95, 12);
  EXPECT_EQ(tangents.size(), 12u);
  for (double u = 0.0; u <= 0.95; u += 0.01) {
    const double approx = pwl_value(tangents, u);
    EXPECT_LE(approx, queue_cost(u) + 1e-9) << "u=" << u;
  }
}

TEST(Piecewise, ApproximationTightAtTangentPoints) {
  const auto tangents = queue_cost_tangents(0.9, 24);
  // Dense tangents: the error must be small where the function is large
  // (relative) and absolutely small everywhere (at tiny u the function is
  // ~u^2, so relative error is inherently coarse but irrelevant).
  for (double u = 0.0; u <= 0.9; u += 0.005) {
    const double exact = queue_cost(u);
    const double approx = pwl_value(tangents, u);
    EXPECT_LE(exact - approx, std::max(0.05 * exact, 0.01)) << "u=" << u;
  }
}

TEST(Piecewise, BadArgsThrow) {
  EXPECT_THROW(queue_cost_tangents(0.0, 8), std::invalid_argument);
  EXPECT_THROW(queue_cost_tangents(1.0, 8), std::invalid_argument);
  EXPECT_THROW(queue_cost_tangents(0.9, 1), std::invalid_argument);
}

}  // namespace
}  // namespace slate
