// Tests for the control hierarchy: SlateProxy telemetry, ClusterController
// aggregation/rule fan-out, and the GlobalController loop including the
// guarded (incremental + revert) rule application of paper §5.
#include <gtest/gtest.h>

#include "app/builders.h"
#include "core/cluster_controller.h"
#include "core/global_controller.h"
#include "core/routing_rules.h"
#include "core/slate_proxy.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

namespace slate {
namespace {

// --- SlateProxy -------------------------------------------------------------

TEST(SlateProxy, RecordsTelemetry) {
  const Topology topo = make_two_cluster_topology(10e-3);
  MetricsRegistry registry(2, 1);
  auto policy = std::make_shared<WeightedRulesPolicy>(topo);
  TraceCollector traces(16);
  SlateProxy proxy(ServiceId{1}, registry, policy, &traces);

  proxy.on_request_start(ClassId{0}, 1.0);
  EXPECT_EQ(registry.inflight(ServiceId{1}), 1u);

  Span span;
  span.service = ServiceId{1};
  span.cls = ClassId{0};
  span.start_time = 1.0;
  span.end_time = 1.5;
  span.exclusive_time = 0.1;
  proxy.on_request_end(ClassId{0}, span);
  EXPECT_EQ(registry.inflight(ServiceId{1}), 0u);
  // The metrics see the exclusive (station-local) time, not the full span.
  EXPECT_DOUBLE_EQ(registry.stats(ServiceId{1}, ClassId{0}).latency.mean(), 0.1);
  EXPECT_EQ(traces.size(), 1u);

  proxy.on_root_response(ClassId{0}, 0.5);
  EXPECT_DOUBLE_EQ(registry.e2e(ClassId{0}).mean(), 0.5);
}

TEST(SlateProxy, NullPolicyThrows) {
  MetricsRegistry registry(1, 1);
  EXPECT_THROW(SlateProxy(ServiceId{0}, registry, nullptr),
               std::invalid_argument);
}

// --- ClusterController --------------------------------------------------------

class ClusterControllerTest : public ::testing::Test {
 protected:
  ClusterControllerTest()
      : topo_(make_two_cluster_topology(10e-3)),
        registry_(2, 1),
        policy_(std::make_shared<WeightedRulesPolicy>(topo_)),
        station_(sim_, Rng(1), ServiceId{0}, ClusterId{0}, 1) {}

  Simulator sim_;
  Topology topo_;
  MetricsRegistry registry_;
  std::shared_ptr<WeightedRulesPolicy> policy_;
  ServiceStation station_;
};

TEST_F(ClusterControllerTest, CollectBuildsReportAndResets) {
  ClusterController controller(ClusterId{0}, 1, registry_,
                               {&station_, nullptr}, policy_);
  // Simulate some traffic at t in [0, 2).
  registry_.record_ingress(ClassId{0}, 0.5);
  registry_.record_ingress(ClassId{0}, 1.0);
  registry_.record_start(ServiceId{0}, ClassId{0}, 0.5);
  registry_.record_end(ServiceId{0}, ClassId{0}, 0.02);
  registry_.record_e2e(ClassId{0}, 0.08);
  sim_.run_until(2.0);

  const ClusterReport report = controller.collect(sim_.now());
  EXPECT_EQ(report.cluster, ClusterId{0});
  EXPECT_DOUBLE_EQ(report.period(), 2.0);
  ASSERT_EQ(report.request_metrics.size(), 1u);
  EXPECT_EQ(report.request_metrics[0].completed, 1u);
  EXPECT_DOUBLE_EQ(report.request_metrics[0].mean_latency, 0.02);
  EXPECT_DOUBLE_EQ(report.request_metrics[0].completion_rps, 0.5);
  ASSERT_EQ(report.ingress_rps.size(), 1u);
  EXPECT_DOUBLE_EQ(report.ingress_rps[0], 1.0);  // 2 arrivals / 2s
  ASSERT_EQ(report.e2e.size(), 1u);
  EXPECT_EQ(report.e2e[0].count, 1u);
  EXPECT_DOUBLE_EQ(report.e2e[0].mean_latency, 0.08);
  // Station metrics are present for deployed services only.
  ASSERT_EQ(report.station_metrics.size(), 1u);
  EXPECT_EQ(report.station_metrics[0].service, ServiceId{0});

  // Period state reset; a second immediate collect is empty.
  const ClusterReport second = controller.collect(sim_.now());
  EXPECT_TRUE(second.request_metrics.empty());
  EXPECT_EQ(controller.reports_built(), 2u);
}

TEST_F(ClusterControllerTest, PushRulesReachesPolicy) {
  ClusterController controller(ClusterId{0}, 1, registry_,
                               {&station_, nullptr}, policy_);
  auto rules = std::make_shared<RoutingRuleSet>();
  RouteWeights w;
  w.clusters = {ClusterId{1}};
  w.weights = {1.0};
  rules->set_rule(ClassId{0}, 1, ClusterId{0}, w);
  controller.push_rules(rules);
  EXPECT_EQ(policy_->rules().get(), rules.get());
  EXPECT_EQ(controller.rules_pushed(), 1u);
}

TEST_F(ClusterControllerTest, SizeMismatchThrows) {
  EXPECT_THROW(
      ClusterController(ClusterId{0}, 1, registry_, {&station_}, policy_),
      std::invalid_argument);
}

// --- GlobalController -----------------------------------------------------------

// Builds a synthetic report as if a cluster had served `rps` of class 0 at
// `latency` with the given utilization and e2e.
ClusterReport synthetic_report(ClusterId cluster, double t0, double t1,
                               ServiceId svc, double rps, double latency,
                               double utilization, double e2e_latency) {
  ClusterReport report;
  report.cluster = cluster;
  report.period_start = t0;
  report.period_end = t1;
  const double period = t1 - t0;
  ServiceClassMetrics m;
  m.service = svc;
  m.cls = ClassId{0};
  m.completed = static_cast<std::uint64_t>(rps * period);
  m.started = m.completed;
  m.completion_rps = rps;
  m.mean_latency = latency;
  report.request_metrics.push_back(m);
  StationMetrics sm;
  sm.service = svc;
  sm.servers = 1;
  sm.utilization = utilization;
  report.station_metrics.push_back(sm);
  report.ingress_rps = {rps};
  report.e2e = {
      E2eMetrics{static_cast<std::uint64_t>(rps * period), e2e_latency}};
  return report;
}

TEST(GlobalController, ProducesRulesFromReports) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  std::vector<ClusterReport> reports;
  for (std::size_t c = 0; c < 2; ++c) {
    reports.push_back(synthetic_report(ClusterId{c}, 0.0, 1.0,
                                       scenario.app->find_service("svc-1"),
                                       c == 0 ? 700.0 : 100.0, 2e-3, 0.5,
                                       10e-3));
  }
  const auto rules = controller.on_reports(reports, 1.0);
  ASSERT_NE(rules, nullptr);
  EXPECT_GT(rules->size(), 0u);
  EXPECT_EQ(controller.rounds(), 1u);
  EXPECT_EQ(controller.optimizations(), 1u);
  // Demand was ingested.
  EXPECT_NEAR(controller.demand()(0, 0), 700.0, 1e-9);
}

TEST(GlobalController, NoDemandMeansNoRules) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, {});
  ClusterReport empty;
  empty.cluster = ClusterId{0};
  empty.period_end = 1.0;
  empty.ingress_rps = {0.0};
  EXPECT_EQ(controller.on_reports({empty}, 1.0), nullptr);
}

TEST(GlobalController, DemandSmoothing) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.demand_smoothing = 0.5;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");
  controller.on_reports(
      {synthetic_report(ClusterId{0}, 0.0, 1.0, svc, 100.0, 2e-3, 0.2, 8e-3)},
      1.0);
  EXPECT_NEAR(controller.demand()(0, 0), 100.0, 1e-9);  // first: take as-is
  controller.on_reports(
      {synthetic_report(ClusterId{0}, 1.0, 2.0, svc, 300.0, 2e-3, 0.5, 8e-3)},
      2.0);
  EXPECT_NEAR(controller.demand()(0, 0), 200.0, 1e-9);  // halfway
}

TEST(GlobalController, FitsModelFromSamples) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.warm_start_model = false;  // cold start: everything defaults
  options.fitter.min_samples = 3;
  options.fitter.smoothing = 1.0;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");
  // Low-utilization periods with 7ms station latency -> service time ~7ms.
  for (int i = 0; i < 4; ++i) {
    controller.on_reports({synthetic_report(ClusterId{0}, i, i + 1.0, svc,
                                            100.0, 7e-3, 0.1, 20e-3)},
                          i + 1.0);
  }
  EXPECT_NEAR(
      controller.model().service_time(svc, ClassId{0}, ClusterId{0}), 7e-3,
      5e-4);
}

TEST(GlobalController, FreezeModelSkipsFitting) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.freeze_model = true;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");
  const double before =
      controller.model().service_time(svc, ClassId{0}, ClusterId{0});
  for (int i = 0; i < 4; ++i) {
    controller.on_reports({synthetic_report(ClusterId{0}, i, i + 1.0, svc,
                                            100.0, 50e-3, 0.1, 60e-3)},
                          i + 1.0);
  }
  EXPECT_DOUBLE_EQ(
      controller.model().service_time(svc, ClassId{0}, ClusterId{0}), before);
}

TEST(GlobalController, GuardrailStepIsIncremental) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.guardrails.enabled = true;
  options.guardrails.step_fraction = 0.25;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");

  // Heavy west overload: the optimizer's target offloads a lot, but the
  // first guarded push must stay within step_fraction of the (implicitly
  // local) previous rules.
  std::vector<ClusterReport> reports{
      synthetic_report(ClusterId{0}, 0.0, 1.0, svc, 800.0, 2e-3, 0.95, 50e-3),
      synthetic_report(ClusterId{1}, 0.0, 1.0, svc, 100.0, 2e-3, 0.2, 8e-3)};
  const auto first = controller.on_reports(reports, 1.0);
  ASSERT_NE(first, nullptr);
  const auto second = controller.on_reports(reports, 2.0);
  ASSERT_NE(second, nullptr);
  // The second push moves strictly closer to the target than the first
  // (monotone approach under a constant target).
  const OptimizerResult& target = controller.last_result();
  EXPECT_LT(rule_set_distance(*second, *target.rules),
            rule_set_distance(*first, *target.rules) + 1e-9);
}

TEST(GlobalController, GuardrailRevertsOnRegression) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.guardrails.enabled = true;
  options.guardrails.step_fraction = 1.0;
  options.guardrails.regression_tolerance = 0.2;
  options.guardrails.min_e2e_samples = 10;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");

  // Period 1: healthy baseline (e2e 10ms), rules pushed.
  std::vector<ClusterReport> healthy{
      synthetic_report(ClusterId{0}, 0.0, 1.0, svc, 700.0, 2e-3, 0.9, 10e-3),
      synthetic_report(ClusterId{1}, 0.0, 1.0, svc, 100.0, 2e-3, 0.2, 10e-3)};
  const auto push1 = controller.on_reports(healthy, 1.0);
  ASSERT_NE(push1, nullptr);

  // Period 2: e2e exploded (100ms >> 10ms * 1.2) -> revert.
  std::vector<ClusterReport> regressed{
      synthetic_report(ClusterId{0}, 1.0, 2.0, svc, 700.0, 2e-3, 0.9, 100e-3),
      synthetic_report(ClusterId{1}, 1.0, 2.0, svc, 100.0, 2e-3, 0.2, 100e-3)};
  const auto push2 = controller.on_reports(regressed, 2.0);
  EXPECT_EQ(controller.reverts(), 1u);
  // The revert re-pushes the previous rules (null would mean "no change";
  // the controller explicitly returns the restored set).
  ASSERT_NE(push2, nullptr);

  // During the hold period no new optimization is applied.
  const auto push3 = controller.on_reports(regressed, 3.0);
  EXPECT_EQ(push3, nullptr);
}

TEST(GlobalController, FastOptimizerProducesRulesToo) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.use_fast_optimizer = true;
  options.guardrails.enabled = true;  // composes with guardrails
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");
  std::vector<ClusterReport> reports{
      synthetic_report(ClusterId{0}, 0.0, 1.0, svc, 700.0, 2e-3, 0.9, 20e-3),
      synthetic_report(ClusterId{1}, 0.0, 1.0, svc, 100.0, 2e-3, 0.2, 8e-3)};
  const auto rules = controller.on_reports(reports, 1.0);
  ASSERT_NE(rules, nullptr);
  EXPECT_GT(rules->size(), 0u);
  rules->validate();
  EXPECT_TRUE(controller.last_result().ok());
}

TEST(GlobalController, LiveServersTrackedFromReports) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, {});
  const ServiceId svc = scenario.app->find_service("svc-1");
  ClusterReport report = synthetic_report(ClusterId{1}, 0.0, 1.0, svc, 100.0,
                                          2e-3, 0.2, 8e-3);
  report.station_metrics[0].servers = 7;  // autoscaled
  controller.on_reports({report}, 1.0);
  EXPECT_EQ(controller.live_servers()[svc.index() * 2 + 1], 7u);
  EXPECT_EQ(controller.live_servers()[svc.index() * 2 + 0], 0u);  // unreported
}

TEST(GlobalController, NoRevertWithinTolerance) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.guardrails.enabled = true;
  options.guardrails.regression_tolerance = 0.5;
  options.guardrails.min_e2e_samples = 10;
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");
  std::vector<ClusterReport> healthy{
      synthetic_report(ClusterId{0}, 0.0, 1.0, svc, 700.0, 2e-3, 0.9, 10e-3),
      synthetic_report(ClusterId{1}, 0.0, 1.0, svc, 100.0, 2e-3, 0.2, 10e-3)};
  controller.on_reports(healthy, 1.0);
  // 20% worse < 50% tolerance: no revert.
  std::vector<ClusterReport> slightly_worse{
      synthetic_report(ClusterId{0}, 1.0, 2.0, svc, 700.0, 2e-3, 0.9, 12e-3),
      synthetic_report(ClusterId{1}, 1.0, 2.0, svc, 100.0, 2e-3, 0.2, 12e-3)};
  controller.on_reports(slightly_worse, 2.0);
  EXPECT_EQ(controller.reverts(), 0u);
}

// --- Rule aging edge cases --------------------------------------------------

TEST_F(ClusterControllerTest, AgeRulesKeepsRulesAtExactStalenessBoundary) {
  ClusterController controller(ClusterId{0}, 1, registry_,
                               {&station_, nullptr}, policy_);
  controller.push_rules(std::make_shared<RoutingRuleSet>());
  controller.heartbeat(10.0);
  // now - last_contact == max_missed * period exactly: still in contact.
  EXPECT_FALSE(controller.age_rules(13.0, 1.0, 3));
  EXPECT_NE(policy_->rules(), nullptr);
  EXPECT_EQ(controller.failovers(), 0u);
  // One epsilon past the boundary: the rules drop.
  EXPECT_TRUE(controller.age_rules(13.0 + 1e-9, 1.0, 3));
  EXPECT_EQ(policy_->rules(), nullptr);
  EXPECT_EQ(controller.failovers(), 1u);
  // Already failed over: aging again is a no-op, not a second failover.
  EXPECT_FALSE(controller.age_rules(20.0, 1.0, 3));
  EXPECT_EQ(controller.failovers(), 1u);
}

TEST_F(ClusterControllerTest, FreshPushMidAgeOutRearmsRules) {
  ClusterController controller(ClusterId{0}, 1, registry_,
                               {&station_, nullptr}, policy_);
  controller.push_rules(std::make_shared<RoutingRuleSet>(), 1);
  controller.heartbeat(10.0);
  EXPECT_TRUE(controller.age_rules(15.0, 1.0, 3));  // aged out
  EXPECT_EQ(policy_->rules(), nullptr);
  // The controller comes back: a fresh push re-arms the data plane and
  // resets the staleness clock.
  auto fresh = std::make_shared<RoutingRuleSet>();
  controller.heartbeat(16.0);
  controller.push_rules(fresh, 2);
  EXPECT_EQ(policy_->rules().get(), fresh.get());
  EXPECT_FALSE(controller.age_rules(17.0, 1.0, 3));
  EXPECT_EQ(controller.failovers(), 1u);
}

TEST_F(ClusterControllerTest, ZeroMaxMissedAgesImmediately) {
  // max_missed == 0: any gap beyond the current instant is too stale.
  ClusterController controller(ClusterId{0}, 1, registry_,
                               {&station_, nullptr}, policy_);
  controller.push_rules(std::make_shared<RoutingRuleSet>());
  controller.heartbeat(5.0);
  EXPECT_FALSE(controller.age_rules(5.0, 1.0, 0));  // same instant: in contact
  EXPECT_TRUE(controller.age_rules(5.1, 1.0, 0));
  EXPECT_EQ(policy_->rules(), nullptr);
}

// --- Stale-demand decay floor ----------------------------------------------

TEST(GlobalController, StaleDemandDecaysThenSnapsToZero) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  GlobalControllerOptions options;
  options.stale_after_periods = 2;
  options.stale_demand_decay = 0.5;
  options.stale_demand_floor = 10.0;  // high floor: snap fast in the test
  GlobalController controller(*scenario.app, *scenario.deployment,
                              *scenario.topology, options);
  const ServiceId svc = scenario.app->find_service("svc-1");

  // West reports 100 RPS once, then goes dark; East keeps reporting.
  controller.on_reports(
      {synthetic_report(ClusterId{0}, 0.0, 1.0, svc, 100.0, 2e-3, 0.5, 8e-3),
       synthetic_report(ClusterId{1}, 0.0, 1.0, svc, 50.0, 2e-3, 0.2, 8e-3)},
      1.0);
  EXPECT_NEAR(controller.demand()(0, 0), 100.0, 1e-9);
  EXPECT_EQ(controller.stale_periods(ClusterId{0}), 0u);

  double t = 2.0;
  auto east_only = [&] {
    controller.on_reports({synthetic_report(ClusterId{1}, t - 1.0, t, svc,
                                            50.0, 2e-3, 0.2, 8e-3)},
                          t);
    t += 1.0;
  };
  // Periods 2-3: within tolerance, demand untouched.
  east_only();
  east_only();
  EXPECT_NEAR(controller.demand()(0, 0), 100.0, 1e-9);
  EXPECT_EQ(controller.stale_periods(ClusterId{0}), 2u);
  EXPECT_EQ(controller.stale_clusters(), 0u);

  // Period 4: past stale_after_periods, geometric decay begins.
  east_only();
  EXPECT_NEAR(controller.demand()(0, 0), 50.0, 1e-9);
  EXPECT_EQ(controller.stale_clusters(), 1u);
  east_only();
  EXPECT_NEAR(controller.demand()(0, 0), 25.0, 1e-9);
  // Period 6: 12.5 decays to 6.25 < floor 10 -> snaps to exactly zero so a
  // long-dark cluster stops attracting ghost-load routing.
  east_only();
  east_only();
  EXPECT_DOUBLE_EQ(controller.demand()(0, 0), 0.0);
  EXPECT_GE(controller.stale_periods(ClusterId{0}), 5u);

  // Recovery: the cluster reports again and demand snaps back live.
  controller.on_reports({synthetic_report(ClusterId{0}, t - 1.0, t, svc, 80.0,
                                          2e-3, 0.5, 8e-3)},
                        t);
  EXPECT_GT(controller.demand()(0, 0), 0.0);
  EXPECT_EQ(controller.stale_periods(ClusterId{0}), 0u);
  EXPECT_EQ(controller.stale_clusters(), 0u);
}

}  // namespace
}  // namespace slate
