// Tests for the global routing optimizer — the paper's four questions:
// how much to offload, to which cluster, where in the topology, and which
// traffic classes (§3, §4).
#include <gtest/gtest.h>

#include <cmath>

#include "app/builders.h"
#include "core/optimizer.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"
#include "topogen/topogen.h"

namespace slate {
namespace {

FlatMatrix<double> demand_for(const Scenario& scenario) {
  FlatMatrix<double> d(scenario.app->class_count(),
                       scenario.topology->cluster_count(), 0.0);
  for (const auto& stream : scenario.demand.streams()) {
    d(stream.cls.index(), stream.cluster.index()) =
        scenario.demand.rate_at(stream.cls, stream.cluster, 0.0);
  }
  return d;
}

OptimizerResult optimize_scenario(const Scenario& scenario,
                                  OptimizerOptions options = {}) {
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology, options);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  return optimizer.optimize(model, demand_for(scenario));
}

// Share of node-n class-k traffic from cluster `from` routed to `to`.
double rule_weight(const OptimizerResult& result, ClassId k, std::size_t node,
                   ClusterId from, ClusterId to) {
  const RouteWeights* rule = result.rules->find(k, node, from);
  return rule == nullptr ? 0.0 : rule->weight_for(to);
}

// --- Basic sanity ------------------------------------------------------------

TEST(Optimizer, UnderloadedStaysFullyLocal) {
  TwoClusterChainParams params;
  params.west_rps = 200.0;  // far below the ~475 capacity
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.overloaded);
  const ClassId k{0};
  for (std::size_t node = 1; node <= 3; ++node) {
    EXPECT_NEAR(rule_weight(result, k, node, ClusterId{0}, ClusterId{0}), 1.0,
                1e-6)
        << "node " << node;
    EXPECT_NEAR(rule_weight(result, k, node, ClusterId{1}, ClusterId{1}), 1.0,
                1e-6);
  }
}

TEST(Optimizer, WeightsFormDistributions) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  result.rules->for_each([](ClassId, std::size_t, ClusterId,
                            const RouteWeights& w) {
    double total = 0.0;
    for (double weight : w.weights) {
      EXPECT_GE(weight, -1e-9);
      total += weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  });
}

TEST(Optimizer, OverloadedWestOffloads) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;  // west alone can serve ~475
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  // Some west traffic must cross at the first routable hop.
  const double local = rule_weight(result, ClassId{0}, 1, ClusterId{0}, ClusterId{0});
  EXPECT_LT(local, 0.9);
  EXPECT_GT(local, 0.2);  // but not everything: offload only what helps
  // East traffic stays home: east is underloaded.
  EXPECT_NEAR(rule_weight(result, ClassId{0}, 1, ClusterId{1}, ClusterId{1}), 1.0,
              1e-6);
}

TEST(Optimizer, RespectsMaxUtilization) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  OptimizerOptions options;
  options.max_utilization = 0.9;
  const OptimizerResult result = optimize_scenario(scenario, options);
  ASSERT_TRUE(result.ok());
  for (const auto& plan : result.station_plans) {
    EXPECT_LE(plan.utilization, 0.9 + 1e-6)
        << "service " << plan.service << " cluster " << plan.cluster;
  }
}

TEST(Optimizer, GlobalOverloadSetsFlagInsteadOfFailing) {
  TwoClusterChainParams params;
  params.west_rps = 3000.0;  // beyond combined capacity (~1425)
  params.east_rps = 500.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());  // soft overflow keeps the LP feasible
  EXPECT_TRUE(result.overloaded);
}

TEST(Optimizer, NeverRoutesToUndeployedCluster) {
  AnomalyParams params;
  const Scenario scenario = make_anomaly_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  // DB (node 2) exists only in East (cluster 1): no rule may weight West.
  result.rules->for_each([&](ClassId, std::size_t node, ClusterId,
                             const RouteWeights& w) {
    if (node == 2) {
      EXPECT_DOUBLE_EQ(w.weight_for(ClusterId{0}), 0.0);
    }
  });
}

// --- The four §3 questions -----------------------------------------------------

// Q1 "how much": higher network latency means keeping more local (Fig. 4).
TEST(Optimizer, OffloadShrinksWithNetworkLatency) {
  double previous_local = -1.0;
  for (double rtt : {5e-3, 25e-3, 50e-3}) {
    TwoClusterChainParams params;
    params.rtt = rtt;
    params.west_rps = 700.0;
    const Scenario scenario = make_two_cluster_chain_scenario(params);
    const OptimizerResult result = optimize_scenario(scenario);
    ASSERT_TRUE(result.ok());
    const double local =
        rule_weight(result, ClassId{0}, 1, ClusterId{0}, ClusterId{0});
    EXPECT_GE(local, previous_local - 1e-6) << "rtt " << rtt;
    previous_local = local;
  }
}

// Q2 "which cluster": greedy floods UT; the optimizer also uses SC (Fig. 5b).
TEST(Optimizer, UsesDistantClusterWhenNearestIsTight) {
  GcpChainParams params;
  params.rps[0] = 800.0;  // OR overloaded
  params.rps[1] = 100.0;  // UT light
  params.rps[2] = 800.0;  // IOW overloaded
  params.rps[3] = 100.0;  // SC light
  params.servers[0] = 1;
  params.servers[1] = 1;
  params.servers[2] = 1;
  params.servers[3] = 1;
  const Scenario scenario = make_gcp_chain_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  // Combined overload (1600 into ~475/cluster) forces spreading: SC must
  // receive a nontrivial share of some overloaded cluster's traffic.
  const ClassId k{0};
  double to_sc = 0.0;
  for (std::size_t node = 1; node <= 3; ++node) {
    to_sc += rule_weight(result, k, node, ClusterId{0}, ClusterId{3});
    to_sc += rule_weight(result, k, node, ClusterId{2}, ClusterId{3});
  }
  EXPECT_GT(to_sc, 0.05);
  // And UT must not be planned past the utilization cap.
  for (const auto& plan : result.station_plans) {
    if (plan.cluster == ClusterId{1}) {
      EXPECT_LE(plan.utilization, 0.95 + 1e-6);
    }
  }
}

// Q3 "where in the topology": with partial replication and a 10x response
// blow-up deeper in the tree, the cheap cut is FR -> MP, not MP -> DB
// (Fig. 5c). A cost-aware optimizer must route West's MP calls to East.
TEST(Optimizer, CutsEarlyToAvoidExpensiveEdge) {
  AnomalyParams params;
  params.west_rps = 200.0;
  const Scenario scenario = make_anomaly_scenario(params);
  OptimizerOptions options;
  options.cost_weight = 100.0;  // administrator values egress cost
  const OptimizerResult result = optimize_scenario(scenario, options);
  ASSERT_TRUE(result.ok());
  // West FR should send its MP calls (node 1) to East...
  EXPECT_GT(rule_weight(result, ClassId{0}, 1, ClusterId{0}, ClusterId{1}), 0.9);
  // ...so MP -> DB (node 2) stays local in East.
  EXPECT_GT(rule_weight(result, ClassId{0}, 2, ClusterId{1}, ClusterId{1}), 0.99);
}

// Q4 "which classes": the expensive class is offloaded preferentially
// (Fig. 5d).
TEST(Optimizer, OffloadsExpensiveClassFirst) {
  TwoClassParams params;
  params.west_light_rps = 400.0;
  params.west_heavy_rps = 80.0;  // work: 0.4 + 0.8 -> overload
  const Scenario scenario = make_two_class_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  const ClassId light = scenario.app->find_class("L");
  const ClassId heavy = scenario.app->find_class("H");
  const double light_remote =
      1.0 - rule_weight(result, light, 1, ClusterId{0}, ClusterId{0});
  const double heavy_remote =
      1.0 - rule_weight(result, heavy, 1, ClusterId{0}, ClusterId{0});
  // The heavy class crosses at a higher rate than the light class: moving
  // one H frees 10x the capacity of moving one L at the same network price.
  EXPECT_GT(heavy_remote, light_remote + 0.2);
}

// --- Cost/latency trade-off ------------------------------------------------------

TEST(Optimizer, CostWeightKeepsTrafficLocal) {
  // §4.1: "if an administrator values cost over latency, an optimal request
  // routing system should reflect it by keeping more traffic local".
  TwoClusterChainParams params;
  params.west_rps = 650.0;  // moderately overloaded
  const Scenario scenario = make_two_cluster_chain_scenario(params);

  OptimizerOptions cheap;
  cheap.cost_weight = 0.0;
  const OptimizerResult latency_only = optimize_scenario(scenario, cheap);

  OptimizerOptions costly;
  costly.cost_weight = 1e7;  // egress dollars dominate
  const OptimizerResult cost_averse = optimize_scenario(scenario, costly);

  ASSERT_TRUE(latency_only.ok() && cost_averse.ok());
  EXPECT_LE(cost_averse.predicted_egress_dollars_per_sec,
            latency_only.predicted_egress_dollars_per_sec + 1e-12);
  const double local_latency_only =
      rule_weight(latency_only, ClassId{0}, 1, ClusterId{0}, ClusterId{0});
  const double local_cost_averse =
      rule_weight(cost_averse, ClassId{0}, 1, ClusterId{0}, ClusterId{0});
  EXPECT_GE(local_cost_averse, local_latency_only - 1e-6);
}

// --- Structural / conservation properties ------------------------------------------

class OptimizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerPropertyTest, PlansAreConsistent) {
  Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  TwoClusterChainParams params;
  params.west_rps = rng.uniform(100.0, 900.0);
  params.east_rps = rng.uniform(50.0, 400.0);
  params.rtt = rng.uniform(5e-3, 60e-3);
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());

  // Every rule is a probability distribution over deployed clusters.
  result.rules->for_each([&](ClassId, std::size_t, ClusterId,
                             const RouteWeights& w) {
    double total = 0.0;
    for (double weight : w.weights) total += weight;
    EXPECT_NEAR(total, 1.0, 1e-6);
  });

  // Total planned work equals total offered work (no traffic lost): the sum
  // of station utilization * servers * (1/service_time) over the chain's
  // stations must equal demand at each chain stage.
  const double total_demand = params.west_rps + params.east_rps;
  const ServiceId svc1 = scenario.app->find_service("svc-1");
  double planned_rps = 0.0;
  for (const auto& plan : result.station_plans) {
    if (plan.service == svc1) {
      const double mu =
          scenario.deployment->servers(plan.service, plan.cluster) /
          scenario.app->traffic_class(ClassId{0}).graph.node(1).compute_time_mean;
      planned_rps += plan.utilization * mu;
    }
  }
  EXPECT_NEAR(planned_rps, total_demand, total_demand * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest, ::testing::Range(0, 15));

// --- Integer (all-or-nothing) mode ---------------------------------------------------

TEST(Optimizer, IntegerModeGivesPointMassRules) {
  TwoClusterChainParams params;
  params.west_rps = 400.0;
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  OptimizerOptions options;
  options.integer_routes = true;
  const OptimizerResult result = optimize_scenario(scenario, options);
  ASSERT_TRUE(result.ok());
  result.rules->for_each([](ClassId, std::size_t, ClusterId,
                            const RouteWeights& w) {
    for (double weight : w.weights) {
      EXPECT_TRUE(weight < 1e-6 || weight > 1.0 - 1e-6)
          << "fractional weight " << weight << " in integer mode";
    }
  });
}

TEST(Optimizer, DemandAtClusterWithoutEntryReassigned) {
  TwoClusterChainParams params;
  params.west_rps = 300.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  const ServiceId ingress = scenario.app->find_service("ingress");
  scenario.deployment->undeploy(ingress, ClusterId{0});

  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  // West's 300 RPS is planned as if entering East; the East ingress station
  // carries the whole 400 RPS.
  for (const auto& plan : result.station_plans) {
    if (plan.service == ingress) {
      EXPECT_EQ(plan.cluster, ClusterId{1});
    }
  }
}

TEST(Optimizer, MultiplicityScalesPlannedLoad) {
  Application app;
  const ServiceId front = app.add_service("front");
  const ServiceId backend = app.add_service("backend");
  TrafficClassSpec spec;
  spec.name = "multi";
  const std::size_t root = spec.graph.set_root(front, 1e-3, 128, 128);
  spec.graph.add_call(root, backend, 1e-3, 128, 128, /*multiplicity=*/3.0);
  app.add_class(std::move(spec));
  Scenario scenario = make_uniform_scenario(
      "multi", std::move(app), make_two_cluster_topology(10e-3), 2);
  scenario.demand.set_rate(ClassId{0}, ClusterId{0}, 100.0);

  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  // backend work = 300 calls/s * 1ms / 2 servers = 0.15 total utilization
  // across clusters (front adds 100 * 1ms / 2 = 0.05).
  double backend_util = 0.0;
  for (const auto& plan : result.station_plans) {
    if (plan.service == backend) backend_util += plan.utilization;
  }
  EXPECT_NEAR(backend_util, 0.15, 1e-6);
}

TEST(Optimizer, LiveServerOverrideChangesPlan) {
  TwoClusterChainParams params;
  params.west_rps = 600.0;
  params.east_rps = 100.0;
  params.west_servers = 2;  // static deployment says 2
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(*scenario.app, 2);
  FlatMatrix<double> demand(1, 2, 0.0);
  demand(0, 0) = 600.0;
  demand(0, 1) = 100.0;

  const OptimizerResult with_static = optimizer.optimize(model, demand);
  ASSERT_TRUE(with_static.ok());
  // West (2 servers = 1000 RPS capacity, u = 0.6) serves mostly locally
  // (a small offload is optimal: it relieves all three chain stations for
  // one crossing).
  const RouteWeights* rule = with_static.rules->find(ClassId{0}, 1, ClusterId{0});
  ASSERT_NE(rule, nullptr);
  const double static_local = rule->weight_for(ClusterId{0});
  EXPECT_GT(static_local, 0.8);

  // Live feedback: West's svc-1 lost a replica (autoscale-down / failure).
  std::vector<unsigned> live(scenario.app->service_count() * 2, 0);
  live[scenario.app->find_service("svc-1").index() * 2 + 0] = 1;
  const OptimizerResult with_live = optimizer.optimize(model, demand, &live);
  ASSERT_TRUE(with_live.ok());
  const RouteWeights* live_rule =
      with_live.rules->find(ClassId{0}, 1, ClusterId{0});
  ASSERT_NE(live_rule, nullptr);
  // 600 RPS on one 500-RPS server violates the utilization cap: the plan
  // must offload much more than with the stale 2-server view.
  EXPECT_LT(live_rule->weight_for(ClusterId{0}), 0.8);
  EXPECT_LT(live_rule->weight_for(ClusterId{0}), static_local - 0.1);
}

TEST(Optimizer, PredictedEgressMatchesHandComputation) {
  // One-hop app, all traffic forced cross-cluster (service only remote):
  // egress $/s must equal rate * (req * p + resp * p) / GiB exactly.
  Application app;
  const ServiceId front = app.add_service("front");
  const ServiceId backend = app.add_service("backend");
  TrafficClassSpec spec;
  spec.name = "k";
  const std::size_t root = spec.graph.set_root(front, 1e-3, 0, 0);
  spec.graph.add_call(root, backend, 1e-3, 1000, 9000);
  app.add_class(std::move(spec));

  Topology topo = make_two_cluster_topology(20e-3, 0.10);
  Scenario scenario;
  scenario.app = std::make_unique<Application>(std::move(app));
  scenario.topology = std::make_unique<Topology>(std::move(topo));
  scenario.deployment = std::make_unique<Deployment>(*scenario.app, 2);
  scenario.deployment->deploy(front, ClusterId{0}, 1, 1000.0);
  scenario.deployment->deploy(front, ClusterId{1}, 1, 1000.0);
  scenario.deployment->deploy(backend, ClusterId{1}, 1, 1000.0);  // East only
  scenario.demand.set_rate(ClassId{0}, ClusterId{0}, 100.0);

  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  const double expected =
      100.0 * (1000.0 + 9000.0) * 0.10 / (1024.0 * 1024.0 * 1024.0);
  EXPECT_NEAR(result.predicted_egress_dollars_per_sec, expected,
              expected * 1e-6);
}

TEST(Optimizer, PredictedLatencyIncludesRttOncePerCrossing) {
  // Same forced-remote app with negligible compute: predicted mean latency
  // ~= compute + rtt (request there + response back).
  Application app;
  const ServiceId front = app.add_service("front");
  const ServiceId backend = app.add_service("backend");
  TrafficClassSpec spec;
  spec.name = "k";
  const std::size_t root = spec.graph.set_root(front, 0.1e-3, 0, 0);
  spec.graph.add_call(root, backend, 0.1e-3, 64, 64);
  app.add_class(std::move(spec));

  Scenario scenario;
  scenario.app = std::make_unique<Application>(std::move(app));
  scenario.topology =
      std::make_unique<Topology>(make_two_cluster_topology(40e-3, 0.0));
  scenario.deployment = std::make_unique<Deployment>(*scenario.app, 2);
  scenario.deployment->deploy(front, ClusterId{0}, 4, 4000.0);
  scenario.deployment->deploy(backend, ClusterId{1}, 4, 4000.0);
  scenario.demand.set_rate(ClassId{0}, ClusterId{0}, 100.0);

  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  // 0.2ms compute + tiny queueing + 40ms RTT.
  EXPECT_NEAR(result.predicted_mean_latency, 40.3e-3, 0.5e-3);
}

// --- Misc -------------------------------------------------------------------------

TEST(Optimizer, ReportsProblemSize) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  const OptimizerResult result = optimize_scenario(scenario);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.variables, 0);
  EXPECT_GT(result.constraints, 0);
  EXPECT_GT(result.simplex_stats.iterations, 0u);
  EXPECT_GT(result.predicted_mean_latency, 0.0);
}

TEST(Optimizer, DemandShapeMismatchThrows) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model =
      LatencyModel::from_application(*scenario.app, 2);
  FlatMatrix<double> wrong(3, 3, 0.0);
  EXPECT_THROW(optimizer.optimize(model, wrong), std::invalid_argument);
}

TEST(Optimizer, BadOptionsThrow) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  OptimizerOptions options;
  options.max_utilization = 1.5;
  EXPECT_THROW(RouteOptimizer(*scenario.app, *scenario.deployment,
                              *scenario.topology, options),
               std::invalid_argument);
}

// --- Warm start & per-class decomposition ------------------------------------

Scenario synth_world(double shared_fraction = 0.25) {
  TopoGenOptions options;
  options.seed = 9;
  options.clusters = 6;
  options.services = 20;
  options.classes = 4;
  options.total_rps = 500.0;
  options.shared_fraction = shared_fraction;
  return make_synth_scenario(options);
}

void expect_identical_rules(const OptimizerResult& a,
                            const OptimizerResult& b) {
  std::size_t rules = 0;
  a.rules->for_each([&](ClassId k, std::size_t node, ClusterId origin,
                        const RouteWeights& w) {
    ++rules;
    const RouteWeights* other = b.rules->find(k, node, origin);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(other->clusters.size(), w.clusters.size());
    for (std::size_t d = 0; d < w.clusters.size(); ++d) {
      EXPECT_EQ(other->clusters[d].index(), w.clusters[d].index());
      EXPECT_EQ(other->weights[d], w.weights[d]);  // bit-for-bit
    }
  });
  EXPECT_GT(rules, 0u);
}

TEST(OptimizerWarmStart, UnchangedDemandIsBitForBit) {
  const Scenario scenario = synth_world();
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const FlatMatrix<double> demand = demand_for(scenario);

  OptimizerCache cache;
  const OptimizerResult cold =
      optimizer.optimize(model, demand, nullptr, &cache);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.warm_started);

  const OptimizerResult warm =
      optimizer.optimize(model, demand, nullptr, &cache);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(cache.memo_hits, 1u);
  EXPECT_EQ(warm.objective, cold.objective);  // bit-for-bit, not NEAR
  expect_identical_rules(cold, warm);
}

TEST(OptimizerWarmStart, PerturbedDemandMatchesColdSolve) {
  const Scenario scenario = synth_world();
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const FlatMatrix<double> demand = demand_for(scenario);

  OptimizerCache cache;
  ASSERT_TRUE(optimizer.optimize(model, demand, nullptr, &cache).ok());

  for (const double scale : {1.02, 0.97, 1.10}) {
    FlatMatrix<double> perturbed = demand;
    for (std::size_t k = 0; k < perturbed.rows(); ++k) {
      for (std::size_t c = 0; c < perturbed.cols(); ++c) {
        perturbed(k, c) *= scale;
      }
    }
    const OptimizerResult warm =
        optimizer.optimize(model, perturbed, nullptr, &cache);
    const OptimizerResult cold = optimizer.optimize(model, perturbed);
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(cold.ok());
    // Both are optimal solutions of the same LP: objectives agree to
    // rounding even when the vertex reached differs.
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * std::max(1.0, std::fabs(cold.objective)))
        << "scale " << scale;
  }
}

TEST(OptimizerWarmStart, MilpModeIgnoresCacheSafely) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  OptimizerOptions options;
  options.integer_routes = true;
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology, options);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const FlatMatrix<double> demand = demand_for(scenario);
  OptimizerCache cache;
  const OptimizerResult a = optimizer.optimize(model, demand, nullptr, &cache);
  const OptimizerResult b = optimizer.optimize(model, demand, nullptr, &cache);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The memo still short-circuits identical input; bases stay untouched.
  EXPECT_EQ(b.objective, a.objective);
}

TEST(OptimizerDecompose, DisjointClassesMatchWholeProblem) {
  // shared_fraction=0 makes every class's service set private, so the
  // partition splits into one group per class. The decomposed solve must
  // land on the same optimum as the whole-problem LP.
  const Scenario scenario = synth_world(0.0);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const FlatMatrix<double> demand = demand_for(scenario);

  OptimizerOptions on;
  on.decompose = true;
  OptimizerOptions off;
  off.decompose = false;
  RouteOptimizer decomposed(*scenario.app, *scenario.deployment,
                            *scenario.topology, on);
  RouteOptimizer whole(*scenario.app, *scenario.deployment,
                       *scenario.topology, off);
  const OptimizerResult a = decomposed.optimize(model, demand);
  const OptimizerResult b = whole.optimize(model, demand);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a.solve_groups, 1u);
  EXPECT_EQ(b.solve_groups, 1u);
  EXPECT_NEAR(a.objective, b.objective,
              1e-6 * std::max(1.0, std::fabs(b.objective)));
  EXPECT_EQ(a.station_plans.size(), b.station_plans.size());
}

TEST(OptimizerDecompose, SharedServicesCoupleClasses) {
  // With a shared pool, classes touching the same service must solve in one
  // group — splitting them would let two classes each claim the full
  // capacity of the shared station.
  const Scenario scenario = synth_world(0.5);
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  const OptimizerResult result =
      optimizer.optimize(model, demand_for(scenario));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.solve_groups, scenario.app->class_count());
}

}  // namespace
}  // namespace slate
