// ShardedSimulator determinism and Simulation sharded-vs-serial identity.
//
// The contract under test (docs/performance.md): the island partition and
// the event schedule are topology-determined, so a sharded run is
// byte-identical for every worker count, with every subsystem armed —
// faults, overload control, the control-plane guard stack, forecasting.

#include "sim/sharded_simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "runtime/experiment.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

// --- ShardedSimulator ------------------------------------------------------

TEST(ShardedSimulator, RejectsNonPositiveLookaheadForMultipleLps) {
  EXPECT_THROW(ShardedSimulator(2, 0.0, 2), std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(2, -1.0, 2), std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(0, 1.0, 1), std::invalid_argument);
  // A single LP needs no lookahead: there is nobody to synchronize with.
  EXPECT_NO_THROW(ShardedSimulator(1, 0.0, 1));
}

TEST(ShardedSimulator, WorkerCountClampsToLpCount) {
  ShardedSimulator sharded(2, 0.5, 16);
  EXPECT_EQ(sharded.workers(), 2u);
  EXPECT_EQ(sharded.lp_count(), 2u);
}

TEST(ShardedSimulator, CrossShardSendsDeliverAtStampedTime) {
  ShardedSimulator sharded(2, 0.01, 1);
  std::vector<double> arrivals;
  sharded.lp(0).schedule_at(0.0, [&sharded, &arrivals] {
    sharded.send(0, 1, 0.05, [&arrivals] { arrivals.push_back(0.05); });
    sharded.send(0, 1, 0.015, [&arrivals] { arrivals.push_back(0.015); });
    sharded.send(0, 1, 0.025, [&arrivals] { arrivals.push_back(0.025); });
  });
  double observed = -1.0;
  bool ordered = true;
  sharded.lp(1).schedule_at(0.2, [&] {
    // By 0.2 every message has been delivered; delivery order must have
    // been by stamped time regardless of send order.
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      if (arrivals[i] < arrivals[i - 1]) ordered = false;
    }
    observed = static_cast<double>(arrivals.size());
  });
  sharded.run_until(0.3);
  EXPECT_EQ(observed, 3.0);
  EXPECT_TRUE(ordered);
}

TEST(ShardedSimulator, SameTimeSendsOrderBySourceThenSequence) {
  // lp0 and lp2 both fire messages into lp1 stamped for the same instant:
  // the drain order is (time, source LP, per-source sequence), so lp0's
  // two messages run before lp2's, each pair in send order.
  ShardedSimulator sharded(3, 0.01, 1);
  std::vector<int> log;
  sharded.lp(0).schedule_at(0.0, [&sharded, &log] {
    sharded.send(0, 1, 0.5, [&log] { log.push_back(1); });
    sharded.send(0, 1, 0.5, [&log] { log.push_back(2); });
  });
  sharded.lp(2).schedule_at(0.0, [&sharded, &log] {
    sharded.send(2, 1, 0.5, [&log] { log.push_back(3); });
    sharded.send(2, 1, 0.5, [&log] { log.push_back(4); });
  });
  sharded.run_until(1.0);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ShardedSimulator, GlobalEventsClipWindowsAndRunAtBarrier) {
  // Huge lookahead: the only thing limiting the first window is the global
  // LP's event at t=5. LPs run through t=5 inclusive BEFORE the global
  // event executes at the barrier.
  ShardedSimulator sharded(2, 1000.0, 1);
  int flag = 0;
  int seen_at_4_9 = -1;
  int seen_at_5 = -1;
  int seen_at_5_1 = -1;
  sharded.global().schedule_at(5.0, [&flag] { flag = 1; });
  sharded.lp(0).schedule_at(4.9, [&] { seen_at_4_9 = flag; });
  sharded.lp(0).schedule_at(5.0, [&] { seen_at_5 = flag; });
  sharded.lp(1).schedule_at(5.1, [&] { seen_at_5_1 = flag; });
  sharded.run_until(10.0);
  EXPECT_EQ(seen_at_4_9, 0);
  EXPECT_EQ(seen_at_5, 0);   // window end is inclusive; global runs after
  EXPECT_EQ(seen_at_5_1, 1); // next window observes the barrier's effect
  EXPECT_DOUBLE_EQ(sharded.now(), 10.0);
}

TEST(ShardedSimulator, BarrierHookRunsOncePerWindow) {
  ShardedSimulator sharded(2, 1.0, 1);
  int hooks = 0;
  sharded.set_barrier_hook([&hooks] { ++hooks; });
  sharded.run_until(5.0);
  // No global events: windows are exactly the lookahead, 5 of them.
  EXPECT_EQ(hooks, 5);
}

// Cross-wired ping-pong traffic between LPs; returns each LP's private
// event log. Any scheduling nondeterminism across worker counts shows up as
// a log difference.
std::vector<std::vector<int>> pingpong_logs(std::size_t workers) {
  constexpr std::size_t kLps = 4;
  ShardedSimulator sharded(kLps, 0.02, workers);
  // Indexed by LP; each LP appends only to its own log (no data races by
  // construction, same rule the simulation's per-island contexts follow).
  auto logs = std::vector<std::vector<int>>(kLps);
  struct Ctx {
    ShardedSimulator* sharded;
    std::vector<std::vector<int>>* logs;
  };
  static Ctx ctx;  // test-local singleton keeps the closures tiny
  ctx = {&sharded, &logs};

  // Each LP seeds a burst; every received message logs and re-sends two
  // messages to the next LPs with deterministic offsets until a hop budget
  // runs out.
  struct Hop {
    static void fire(std::uint32_t lp, int id, int hops) {
      (*ctx.logs)[lp].push_back(id);
      if (hops <= 0) return;
      const double now = ctx.sharded->lp(lp).now();
      const std::uint32_t a = (lp + 1) % 4;
      const std::uint32_t b = (lp + 2) % 4;
      ctx.sharded->send(lp, a, now + 0.021 + 0.001 * (id % 5),
                        [a, id, hops] { fire(a, id * 2 + 1, hops - 1); });
      ctx.sharded->send(lp, b, now + 0.033,
                        [b, id, hops] { fire(b, id * 2 + 2, hops - 1); });
    }
  };
  for (std::uint32_t lp = 0; lp < kLps; ++lp) {
    for (int i = 0; i < 8; ++i) {
      sharded.lp(lp).schedule_at(0.001 * i, [lp, i] {
        Hop::fire(lp, static_cast<int>(lp) * 100 + i, 6);
      });
    }
  }
  sharded.run_until(2.0);
  return logs;
}

TEST(ShardedSimulator, DeterministicAcrossWorkerCounts) {
  const auto serial = pingpong_logs(1);
  const auto two = pingpong_logs(2);
  const auto four = pingpong_logs(4);
  std::size_t total = 0;
  for (const auto& log : serial) total += log.size();
  EXPECT_GT(total, 1000u);  // the cascade actually fanned out
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
}

// --- Simulation: sharded identity gauntlet ---------------------------------

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.egress_bytes, b.egress_bytes);
  EXPECT_EQ(a.egress_cost_dollars, b.egress_cost_dollars);
  EXPECT_EQ(a.call_retries, b.call_retries);
  EXPECT_EQ(a.call_timeouts, b.call_timeouts);
  EXPECT_EQ(a.call_rejections, b.call_rejections);
  EXPECT_EQ(a.total_shed(), b.total_shed());
  EXPECT_EQ(a.deadline_cancellations, b.deadline_cancellations);
  EXPECT_EQ(a.breaker_ejections, b.breaker_ejections);
  EXPECT_EQ(a.rule_pushes, b.rule_pushes);
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.admission_admitted, b.admission_admitted);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.admission_adapt_rounds, b.admission_adapt_rounds);
  EXPECT_EQ(a.admission_rate_raises, b.admission_rate_raises);
  EXPECT_EQ(a.admission_rate_cuts, b.admission_rate_cuts);
  EXPECT_EQ(a.admission_floor_raises, b.admission_floor_raises);
  EXPECT_EQ(a.contingency_evals, b.contingency_evals);
  EXPECT_EQ(a.contingency_resolves, b.contingency_resolves);
  EXPECT_EQ(a.contingency_margin_worst, b.contingency_margin_worst);
  EXPECT_EQ(a.drains_started, b.drains_started);
  EXPECT_EQ(a.drains_completed, b.drains_completed);
  EXPECT_EQ(a.drains_cancelled, b.drains_cancelled);
  EXPECT_EQ(a.drain_steps, b.drain_steps);
  EXPECT_EQ(a.drain_pause_periods, b.drain_pause_periods);
  EXPECT_EQ(a.server_seconds, b.server_seconds);
  EXPECT_EQ(a.server_cost_dollars, b.server_cost_dollars);
  EXPECT_EQ(a.autoscaler_scale_ups, b.autoscaler_scale_ups);
  EXPECT_EQ(a.autoscaler_scale_downs, b.autoscaler_scale_downs);
  EXPECT_EQ(a.bilevel_capacity_overrides, b.bilevel_capacity_overrides);
  EXPECT_EQ(a.bilevel_plans_pushed, b.bilevel_plans_pushed);
  // Byte-identical latency streams, not just equal summaries.
  ASSERT_EQ(a.e2e.samples().size(), b.e2e.samples().size());
  EXPECT_EQ(a.e2e.samples(), b.e2e.samples());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t k = 0; k < a.flows.size(); ++k) {
    ASSERT_EQ(a.flows[k].size(), b.flows[k].size());
    for (std::size_t n = 0; n < a.flows[k].size(); ++n) {
      EXPECT_EQ(a.flows[k][n].data(), b.flows[k][n].data());
    }
  }
}

// The gauntlet: every scenario runs the same config at shards 1/2/4/8 and
// must produce byte-identical results; the serial (shards=0) engine must
// generate the identical workload (the per-stream arrival sequences are
// engine-invariant even though routing draws are not shared).
void run_gauntlet(const Scenario& scenario, const RunConfig& base) {
  const ExperimentResult legacy = run_experiment(scenario, base);
  RunConfig config = base;
  config.shards = 1;
  const ExperimentResult one = run_experiment(scenario, config);
  EXPECT_EQ(legacy.generated, one.generated);
  EXPECT_GT(one.generated, 0u);
  for (std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    config.shards = shards;
    const ExperimentResult many = run_experiment(scenario, config);
    expect_identical(one, many);
  }
}

RunConfig gauntlet_config(PolicyKind policy) {
  RunConfig config;
  config.policy = policy;
  config.duration = 8.0;
  config.warmup = 2.0;
  config.seed = 7;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  return config;
}

TEST(ShardedSimulation, GcpTopologySplitsIntoFourIslands) {
  const Scenario scenario = make_gcp_chain_scenario();
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  config.shards = 8;
  Simulation sim(scenario, config);
  EXPECT_EQ(sim.island_count(), 4u);
  // GCP latency floor: >= 10ms one-way between any two clusters, scaled
  // down by the topology's jitter band.
  EXPECT_GT(sim.lookahead_seconds(), 0.005);
  EXPECT_LT(sim.lookahead_seconds(), 1.0);
}

TEST(ShardedSimulation, IdentityPlainScenario) {
  for (PolicyKind policy :
       {PolicyKind::kLocalOnly, PolicyKind::kRoundRobin,
        PolicyKind::kLocalityFailover, PolicyKind::kStaticWeights,
        PolicyKind::kWaterfall, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    run_gauntlet(make_gcp_chain_scenario(), gauntlet_config(policy));
  }
}

TEST(ShardedSimulation, IdentityFaultArmed) {
  Scenario scenario = make_gcp_chain_scenario();
  scenario.faults.cluster_outage(ClusterId{0}, 3.0, 2.0);
  scenario.faults.link_partition(ClusterId{1}, ClusterId{2}, 4.0, 1.5);
  scenario.faults.service_slowdown(ServiceId{1}, ClusterId{3}, 2.0, 3.0, 4.0);
  for (PolicyKind policy : {PolicyKind::kLocalityFailover, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    run_gauntlet(scenario, gauntlet_config(policy));
  }
}

TEST(ShardedSimulation, IdentityOverloadArmed) {
  GcpChainParams params;
  params.rps[0] = 1200.0;  // overloaded: the gates fire constantly
  params.rps[2] = 1200.0;
  const Scenario scenario = make_gcp_chain_scenario(params);
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  config.overload.queue.max_queue = 32;
  config.overload.queue.codel_target = 0.02;
  config.overload.deadline.enabled = true;
  config.overload.deadline.default_deadline = 0.4;
  config.overload.breaker.enabled = true;
  config.overload.breaker.min_volume = 10;
  run_gauntlet(scenario, config);
}

TEST(ShardedSimulation, IdentityAdmissionArmed) {
  GcpChainParams params;
  params.rps[0] = 1200.0;  // overloaded: the gate fires constantly
  params.rps[2] = 1200.0;
  const Scenario scenario = make_gcp_chain_scenario(params);
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  config.admission.enabled = true;
  config.admission.default_rate = 900.0;
  config.admission.default_slo = 0.4;
  config.admission.target_attainment = 0.9;
  run_gauntlet(scenario, config);
  // The gauntlet is vacuous unless the gate actually rejected work.
  RunConfig probe = config;
  probe.shards = 2;
  const ExperimentResult r = run_experiment(scenario, probe);
  EXPECT_GT(r.admission_rejected, 0u);
  EXPECT_EQ(r.generated, r.admission_admitted + r.admission_rejected);
  EXPECT_GT(r.admission_adapt_rounds, 0u);
}

TEST(ShardedSimulation, IdentityGuardArmed) {
  Scenario scenario = make_gcp_chain_scenario();
  scenario.faults.telemetry_corruption(ClusterId{0}, 3.0, 4.0, 8.0);
  scenario.faults.solver_outage(4.0, 2.0);
  scenario.guard.admission.enabled = true;
  scenario.guard.solver.enabled = true;
  scenario.guard.rollout.enabled = true;
  run_gauntlet(scenario, gauntlet_config(PolicyKind::kSlate));
}

TEST(ShardedSimulation, IdentityForecastArmed) {
  Scenario scenario = make_gcp_chain_scenario();
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  config.slate.forecast.kind = ForecastKind::kEwma;
  run_gauntlet(scenario, config);
}

TEST(ShardedSimulation, IdentityDrainArmed) {
  // A coordinated drain changes routing (front-door diverts), capacity
  // (solver + autoscaler views), and the control timeline; the keep-fraction
  // steps land at global barriers, so byte-identity must hold across shard
  // counts while a drain is actively walking a cluster to zero.
  const Scenario scenario = make_gcp_chain_scenario();
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  DrainSpec drain;
  drain.cluster = ClusterId{1};
  drain.start = 3.0;
  drain.over = 4.0;
  config.drains.push_back(drain);
  run_gauntlet(scenario, config);
  // The gauntlet is vacuous unless the drain actually stepped.
  RunConfig probe = config;
  probe.shards = 2;
  const ExperimentResult r = run_experiment(scenario, probe);
  EXPECT_EQ(r.drains_started, 1u);
  EXPECT_GT(r.drain_steps, 0u);
}

TEST(ShardedSimulation, IdentityContingencyArmed) {
  // N-1 headroom checks and padded re-solves run inside the control tick at
  // window barriers; arming them must not perturb shard-count identity.
  const Scenario scenario = make_gcp_chain_scenario();
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  config.slate.contingency.enabled = true;
  run_gauntlet(scenario, config);
  RunConfig probe = config;
  probe.shards = 2;
  const ExperimentResult r = run_experiment(scenario, probe);
  EXPECT_GT(r.contingency_evals, 0u);
}

TEST(ShardedSimulation, IdentityBilevelArmed) {
  // Bi-level co-design touches both directions of the control loop: the
  // capacity overlay feeds the solve and the plan feeds the autoscalers,
  // all inside the control tick at window barriers. Arming it — with
  // differentiated server prices so the joint objective is live — must not
  // perturb shard-count identity, including the server-dollar accounting.
  Scenario scenario = make_gcp_chain_scenario();
  scenario.topology->set_uniform_server_price(0.10);
  scenario.topology->set_server_price(ClusterId{0}, 0.04);
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  config.autoscaler_enabled = true;
  config.autoscaler.evaluation_period = 1.0;
  config.autoscaler.cooldown = 2.0;
  config.autoscaler.provision_delay = 2.0;
  config.bilevel.enabled = true;
  run_gauntlet(scenario, config);
  // The gauntlet is vacuous unless the loop actually closed.
  RunConfig probe = config;
  probe.shards = 2;
  const ExperimentResult r = run_experiment(scenario, probe);
  EXPECT_GT(r.bilevel_plans_pushed, 0u);
  EXPECT_GT(r.server_seconds, 0.0);
  EXPECT_GT(r.server_cost_dollars, 0.0);
}

TEST(ShardedSimulation, SingleIslandShardedMatchesLegacyExactly) {
  // One island (a single-cluster scenario collapses the partition): the
  // sharded engine degenerates to one LP with an infinite window, and the
  // schedule — including every routing draw — matches the legacy engine
  // bit for bit.
  TwoClusterChainParams params;
  params.rtt = 0.0;  // zero latency: both clusters share one island
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RunConfig config = gauntlet_config(PolicyKind::kSlate);
  const ExperimentResult legacy = run_experiment(scenario, config);
  config.shards = 4;
  const ExperimentResult sharded = run_experiment(scenario, config);

  Simulation probe(scenario, config);
  EXPECT_EQ(probe.island_count(), 1u);
  EXPECT_EQ(probe.lookahead_seconds(), std::numeric_limits<double>::infinity());
  expect_identical(legacy, sharded);
}

}  // namespace
}  // namespace slate