// End-to-end fault injection and recovery: cluster outages, telemetry
// blackouts, and link partitions driven through the full SLATE control
// hierarchy, with the data plane's timeout/retry machinery on.
#include <gtest/gtest.h>

#include "runtime/scenarios.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

RunConfig fault_config(PolicyKind policy, std::uint64_t seed = 7) {
  RunConfig config;
  config.policy = policy;
  config.duration = 70.0;
  config.warmup = 10.0;
  config.seed = seed;
  config.control_period = 1.0;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  return config;
}

TEST(FaultRecovery, OutageGoodputRecoversWithinThreeControlPeriods) {
  // West overloaded (600 > 475 capacity), SLATE spills onto East; East dies
  // for 10s mid-run. Spilled calls are rejected, retried on West; after the
  // outage clears, goodput must return to within 5% of the pre-fault level
  // inside 3 control periods.
  TwoClusterChainParams params;
  params.west_rps = 600.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.cluster_outage(ClusterId{1}, 40.0, 10.0);  // East: [40, 50)

  const ExperimentResult r =
      run_experiment(scenario, fault_config(PolicyKind::kSlate));
  ASSERT_GT(r.completed, 1000u);
  EXPECT_EQ(r.fault_transitions, 2u);

  const double pre = r.goodput_in_window(30.0, 40.0);
  const double during = r.goodput_in_window(42.0, 49.0);
  const double post = r.goodput_in_window(53.0, 60.0);
  // The outage bites: West alone cannot serve 700 RPS.
  EXPECT_LT(during, 0.9 * pre);
  EXPECT_GT(r.failed, 0u);
  EXPECT_GT(r.call_rejections, 0u);
  // ...and recovery is prompt once East returns (fault clears at t=50).
  EXPECT_GE(post, 0.95 * pre);
}

TEST(FaultRecovery, RetriesConvertOutageErrorsIntoFailover) {
  // Round-robin keeps sending half of every hop to East while East is down,
  // and the surviving cluster has plenty of headroom. The fair-weather
  // config fails every East-bound call terminally; with retries the
  // rejected calls re-route to West and most requests still succeed.
  TwoClusterChainParams params;
  params.west_rps = 200.0;
  params.east_rps = 100.0;
  params.west_servers = 2;  // headroom to absorb the whole load
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.cluster_outage(ClusterId{1}, 40.0, 10.0);

  RunConfig with_retries = fault_config(PolicyKind::kRoundRobin);
  // Default budget (0.2 tokens/call) throttles a 50%-of-traffic failure;
  // let every call bank a retry so the comparison isolates the mechanism.
  with_retries.failure.retry_budget_ratio = 1.0;
  RunConfig fair_weather = fault_config(PolicyKind::kRoundRobin);
  fair_weather.failure.enabled = false;

  const ExperimentResult handled = run_experiment(scenario, with_retries);
  const ExperimentResult naive = run_experiment(scenario, fair_weather);

  ASSERT_GT(naive.failed, 0u);
  EXPECT_GT(handled.call_retries, 0u);
  EXPECT_LT(handled.failed, naive.failed / 2);
  EXPECT_GT(handled.completed, naive.completed);
}

TEST(FaultRecovery, TelemetryBlackoutDegradesToFailoverAndRecovers) {
  // West loses contact with the global controller for 8 control periods.
  // The controller must neither crash nor wedge: West ages its rules out to
  // locality failover, the global controller decays West's demand estimate,
  // and everything reconverges once reports resume.
  TwoClusterChainParams params;
  params.west_rps = 400.0;  // within West's own capacity
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.telemetry_blackout(ClusterId{0}, 30.0, 8.0);

  RunConfig config = fault_config(PolicyKind::kSlate);
  Simulation sim(scenario, config);
  const ExperimentResult r = sim.run();

  ASSERT_GT(r.completed, 1000u);
  // The control loop ran every period, blackout included.
  EXPECT_GE(r.controller_rounds, 65u);
  // West dropped its stale rules during the blackout...
  ASSERT_NE(sim.cluster_controller(ClusterId{0}), nullptr);
  EXPECT_GE(sim.cluster_controller(ClusterId{0})->failovers(), 1u);
  // ...and is no longer stale at the end of the run.
  ASSERT_NE(sim.global_controller(), nullptr);
  EXPECT_EQ(sim.global_controller()->stale_clusters(), 0u);
  // Data plane kept serving: goodput after recovery matches before.
  const double pre = r.goodput_in_window(20.0, 30.0);
  const double post = r.goodput_in_window(45.0, 60.0);
  EXPECT_GE(post, 0.95 * pre);
  EXPECT_EQ(r.failed, 0u);  // a blackout breaks control, not the data plane
}

TEST(FaultRecovery, PartitionedLinkTimesOutAndRetriesElsewhere) {
  // The West->East request path drops every message for 10s. Calls in
  // flight hit their deadline and retry excluding East, so requests keep
  // succeeding on West.
  TwoClusterChainParams params;
  params.west_rps = 300.0;  // light enough for West to absorb everything
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.link_partition(ClusterId{0}, ClusterId{1}, 30.0, 10.0);

  const ExperimentResult r =
      run_experiment(scenario, fault_config(PolicyKind::kSlate));
  ASSERT_GT(r.completed, 1000u);
  EXPECT_GT(r.call_timeouts, 0u);
  EXPECT_GT(r.call_retries, 0u);
  const double pre = r.goodput_in_window(20.0, 30.0);
  const double post = r.goodput_in_window(45.0, 60.0);
  EXPECT_GE(post, 0.95 * pre);
}

TEST(FaultRecovery, LinkDegradationInflatesCrossClusterLatency) {
  // A 10x latency surge plus 50ms additive on West->East: SLATE's spilled
  // calls get slower end to end while everything still succeeds (no
  // timeout: 0 disables the deadline).
  TwoClusterChainParams params;
  params.west_rps = 300.0;
  params.east_rps = 100.0;

  Scenario clean = make_two_cluster_chain_scenario(params);
  Scenario degraded = make_two_cluster_chain_scenario(params);
  degraded.faults.link_degradation(ClusterId{0}, ClusterId{1}, 10.0, 60.0,
                                   10.0, 0.05);

  RunConfig config = fault_config(PolicyKind::kRoundRobin);
  config.failure.call_timeout = 0.0;  // no deadline: slowness, not failure
  const ExperimentResult fast = run_experiment(clean, config);
  const ExperimentResult slow = run_experiment(degraded, config);

  ASSERT_GT(slow.completed, 1000u);
  EXPECT_EQ(slow.failed, 0u);
  // Round-robin sends half of every hop cross-cluster; the degraded run
  // must be clearly slower.
  EXPECT_GT(slow.mean_latency(), fast.mean_latency() + 0.05);
}

TEST(FaultRecovery, ServiceSlowdownGrayFailureRaisesLatency) {
  // svc-1 in West runs 20x slow (gray failure) for the whole measured run.
  TwoClusterChainParams params;
  params.west_rps = 200.0;
  params.east_rps = 0.0;

  Scenario clean = make_two_cluster_chain_scenario(params);
  Scenario gray = make_two_cluster_chain_scenario(params);
  const ServiceId svc1 = gray.app->find_service("svc-1");
  gray.faults.service_slowdown(svc1, ClusterId{0}, 0.0, 70.0, 20.0);

  RunConfig config = fault_config(PolicyKind::kLocalOnly);
  config.failure.call_timeout = 0.0;
  const ExperimentResult fast = run_experiment(clean, config);
  const ExperimentResult slow = run_experiment(gray, config);
  ASSERT_GT(slow.completed, 1000u);
  // 2ms compute becomes 40ms at u = 200/25 — saturated; just demand the
  // direction, with margin.
  EXPECT_GT(slow.mean_latency(), fast.mean_latency() * 3.0);
}

TEST(FaultRecovery, FrontDoorFailsOverWhenIngressClusterIsDown) {
  // All of East's arrivals land while East is down: the front door sends
  // them to West instead of failing them.
  TwoClusterChainParams params;
  params.west_rps = 100.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.cluster_outage(ClusterId{1}, 20.0, 40.0);

  const ExperimentResult r =
      run_experiment(scenario, fault_config(PolicyKind::kLocalityFailover));
  ASSERT_GT(r.completed, 1000u);
  // East-origin roots served in West during the outage.
  EXPECT_GT(r.flows[0][0](1, 0), 1000u);
  // Nearly everything still succeeds (only calls in flight at the onset
  // can fail).
  EXPECT_LT(r.error_rate(), 0.01);
}

TEST(FaultRecovery, TotalOutageFailsRequestsThenRecovers) {
  // Both clusters down: nothing can serve; every arrival fails fast. After
  // the window, service resumes.
  TwoClusterChainParams params;
  params.west_rps = 200.0;
  params.east_rps = 0.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.cluster_outage(ClusterId{0}, 30.0, 5.0);
  scenario.faults.cluster_outage(ClusterId{1}, 30.0, 5.0);

  const ExperimentResult r =
      run_experiment(scenario, fault_config(PolicyKind::kLocalityFailover));
  EXPECT_GT(r.failed, 0u);
  EXPECT_GT(r.goodput_in_window(40.0, 60.0), 0.9 * r.goodput_in_window(20.0, 30.0));
  // During the blackout window goodput is (almost) zero.
  EXPECT_LT(r.goodput_in_window(31.0, 34.0), 20.0);
}

TEST(FaultRecovery, DeterministicForSeedUnderFaults) {
  TwoClusterChainParams params;
  params.west_rps = 500.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.cluster_outage(ClusterId{1}, 30.0, 10.0);
  scenario.faults.link_degradation(ClusterId{0}, ClusterId{1}, 15.0, 20.0,
                                   3.0, 0.01);

  const ExperimentResult a =
      run_experiment(scenario, fault_config(PolicyKind::kSlate, 11));
  const ExperimentResult b =
      run_experiment(scenario, fault_config(PolicyKind::kSlate, 11));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.call_retries, b.call_retries);
  EXPECT_EQ(a.call_timeouts, b.call_timeouts);
  EXPECT_DOUBLE_EQ(a.mean_latency(), b.mean_latency());
}

}  // namespace
}  // namespace slate
