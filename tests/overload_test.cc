// Overload control: bounded/class-aware station queues, deadline
// propagation, circuit breaking, and the end-to-end metastable-failure
// acceptance gauntlet (docs/overload.md).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/service_station.h"
#include "overload/circuit_breaker.h"
#include "overload/overload_policy.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

using JobOutcome = ServiceStation::JobOutcome;

ServiceStation::JobSpec spec(double mean, int priority = 0,
                             double deadline = ServiceStation::kNoDeadline) {
  ServiceStation::JobSpec s;
  s.service_time_mean = mean;
  s.priority = priority;
  s.deadline = deadline;
  return s;
}

// --- Bounded queues & priority shedding ------------------------------------

TEST(BoundedQueue, RejectsWhenFullFiringCompletionSynchronously) {
  Simulator sim;
  ServiceStation st(sim, Rng(1), ServiceId{0}, ClusterId{0}, 1);
  StationOverloadConfig oc;
  oc.max_queue = 2;
  st.configure_overload(oc);

  std::vector<JobOutcome> outcomes;
  auto record = [&](JobOutcome o, double, double) { outcomes.push_back(o); };
  // One into the server, two into the queue, two rejected at the door.
  for (int i = 0; i < 5; ++i) {
    const bool admitted = st.submit(spec(1.0), record);
    EXPECT_EQ(admitted, i < 3);
  }
  // The rejections have already completed; the rest are still in flight.
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], JobOutcome::kShedQueueFull);
  EXPECT_EQ(outcomes[1], JobOutcome::kShedQueueFull);
  EXPECT_EQ(st.jobs_shed(), 2u);
  EXPECT_EQ(st.queue_length(), 2u);

  sim.run();
  ASSERT_EQ(outcomes.size(), 5u);
  for (std::size_t i = 2; i < 5; ++i) EXPECT_EQ(outcomes[i], JobOutcome::kServed);
  EXPECT_EQ(st.jobs_submitted(), 3u);
  EXPECT_EQ(st.jobs_completed(), 3u);
}

TEST(BoundedQueue, PriorityArrivalEvictsLowestPriorityQueuedJob) {
  Simulator sim;
  ServiceStation st(sim, Rng(2), ServiceId{0}, ClusterId{0}, 1);
  StationOverloadConfig oc;
  oc.max_queue = 2;
  st.configure_overload(oc);

  std::vector<std::pair<int, JobOutcome>> events;  // (tag, outcome)
  auto tagged = [&](int tag) {
    return [&events, tag](JobOutcome o, double, double) {
      events.emplace_back(tag, o);
    };
  };
  st.submit(spec(1.0, 0), tagged(0));  // into the server
  st.submit(spec(1.0, 0), tagged(1));  // queued
  st.submit(spec(1.0, 5), tagged(2));  // queued, high priority
  // Full queue + higher priority than job 1: job 1 is evicted.
  EXPECT_TRUE(st.submit(spec(1.0, 5), tagged(3)));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (std::pair<int, JobOutcome>{1, JobOutcome::kEvicted}));
  EXPECT_EQ(st.jobs_evicted(), 1u);
  // Equal priority cannot evict: rejected instead.
  EXPECT_FALSE(st.submit(spec(1.0, 5), tagged(4)));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].second, JobOutcome::kShedQueueFull);

  sim.run();
  // Jobs 0, 2, 3 ran; conservation holds.
  EXPECT_EQ(st.jobs_completed(), 3u);
  EXPECT_EQ(st.jobs_submitted(),
            st.jobs_completed() + st.jobs_cancelled() + st.jobs_evicted());
}

TEST(BoundedQueue, PriorityEvictionDisabledRejectsHighPriorityArrival) {
  Simulator sim;
  ServiceStation st(sim, Rng(3), ServiceId{0}, ClusterId{0}, 1);
  StationOverloadConfig oc;
  oc.max_queue = 1;
  oc.priority_shedding = false;
  st.configure_overload(oc);

  st.submit(spec(1.0, 0), [](JobOutcome, double, double) {});
  st.submit(spec(1.0, 0), [](JobOutcome, double, double) {});
  JobOutcome last = JobOutcome::kServed;
  EXPECT_FALSE(st.submit(spec(1.0, 9),
                         [&](JobOutcome o, double, double) { last = o; }));
  EXPECT_EQ(last, JobOutcome::kShedQueueFull);
  EXPECT_EQ(st.jobs_evicted(), 0u);
  sim.run();
}

// --- CoDel-style queue-delay shedding --------------------------------------

TEST(CoDelShedder, ActivatesUnderStandingQueueAndRecovers) {
  Simulator sim;
  Rng rng(11);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 1);
  StationOverloadConfig oc;
  oc.codel_target = 0.01;    // 10ms standing delay allowed
  oc.codel_interval = 0.05;  // sustained for 50ms
  st.configure_overload(oc);

  // 2x overload for two seconds: the queue builds a standing delay far
  // above target, so the shedder must engage.
  Rng arrivals = rng.fork(1);
  std::uint64_t shed = 0, served = 0;
  std::function<void()> arrive = [&]() {
    st.submit(spec(0.02), [&](JobOutcome o, double, double) {
      if (o == JobOutcome::kServed) ++served;
      if (o == JobOutcome::kShedQueueDelay) ++shed;
    });
    const double gap = arrivals.exponential(1.0 / 100.0);
    if (sim.now() + gap < 2.0) sim.schedule_after(gap, arrive);
  };
  sim.schedule_at(0.0, arrive);
  sim.run();

  EXPECT_GT(shed, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(st.jobs_shed(), shed);
  // With arrivals stopped the queue drained and every admitted job ran.
  EXPECT_EQ(st.queue_length(), 0u);
  EXPECT_EQ(st.jobs_submitted(), st.jobs_completed());
}

// --- Deadlines at the station ----------------------------------------------

TEST(Deadlines, ExpiredAtSubmitIsRejected) {
  Simulator sim;
  ServiceStation st(sim, Rng(4), ServiceId{0}, ClusterId{0}, 1);
  sim.schedule_at(1.0, [&]() {
    JobOutcome got = JobOutcome::kServed;
    EXPECT_FALSE(
        st.submit(spec(0.01, 0, 0.5), [&](JobOutcome o, double, double) {
          got = o;
        }));
    EXPECT_EQ(got, JobOutcome::kExpired);
  });
  sim.run();
  EXPECT_EQ(st.jobs_shed(), 1u);
  EXPECT_EQ(st.jobs_submitted(), 0u);
}

TEST(Deadlines, ExpiredInQueueIsCancelledAtDispatchNotServed) {
  Simulator sim;
  ServiceStation st(sim, Rng(5), ServiceId{0}, ClusterId{0}, 1);
  // Blocker holds the only server ~1s (Exp(1) sample); the second job's
  // deadline expires long before the server frees up.
  st.submit(spec(1.0), [](JobOutcome, double, double) {});
  JobOutcome got = JobOutcome::kServed;
  double queue_seconds = -1.0, service_seconds = -1.0;
  st.submit(spec(0.5, 0, 1e-6), [&](JobOutcome o, double q, double s) {
    got = o;
    queue_seconds = q;
    service_seconds = s;
  });
  sim.run();
  EXPECT_EQ(got, JobOutcome::kCancelled);
  EXPECT_GT(queue_seconds, 0.0);
  EXPECT_EQ(service_seconds, 0.0);
  EXPECT_EQ(st.jobs_cancelled(), 1u);
  // Cancelled work burned no server time.
  EXPECT_EQ(st.wasted_server_seconds(), 0.0);
}

TEST(Deadlines, WithoutCancellationExpiredWorkIsServedAndCountedAsWaste) {
  Simulator sim;
  ServiceStation st(sim, Rng(5), ServiceId{0}, ClusterId{0}, 1);
  StationOverloadConfig oc;
  oc.cancel_expired = false;
  st.configure_overload(oc);

  st.submit(spec(1.0), [](JobOutcome, double, double) {});
  JobOutcome got = JobOutcome::kCancelled;
  st.submit(spec(0.5, 0, 1e-6),
            [&](JobOutcome o, double, double) { got = o; });
  sim.run();
  EXPECT_EQ(got, JobOutcome::kServed);  // zombie work ran to completion
  EXPECT_EQ(st.jobs_cancelled(), 0u);
  EXPECT_GT(st.wasted_server_seconds(), 0.0);
}

// --- Queue-delay telemetry -------------------------------------------------

TEST(QueueDelayWindow, RecordsPerDispatchDelaysAndResets) {
  Simulator sim;
  ServiceStation st(sim, Rng(6), ServiceId{0}, ClusterId{0}, 1);
  for (int i = 0; i < 10; ++i) {
    st.submit(spec(0.01), [](JobOutcome, double, double) {});
  }
  sim.run();
  const SampleSet& w = st.queue_delay_window();
  ASSERT_EQ(w.count(), 10u);
  EXPECT_EQ(w.quantile(0.0), 0.0);  // first job never waited
  EXPECT_GT(w.quantile(1.0), 0.0);  // later jobs did
  EXPECT_GE(w.quantile(0.99), w.quantile(0.5));
  st.reset_queue_delay_window();
  EXPECT_EQ(st.queue_delay_window().count(), 0u);
}

// --- Circuit breaker state machine -----------------------------------------

BreakerPolicy test_breaker() {
  BreakerPolicy p;
  p.enabled = true;
  p.window = 1.0;
  p.min_volume = 10;
  p.failure_ratio = 0.5;
  p.ejection_base = 5.0;
  p.max_ejection = 60.0;
  p.half_open_probes = 2;
  return p;
}

TEST(CircuitBreaker, TripsOnFailureRateEjectsThenProbesBackClosed) {
  CircuitBreakerBank bank(test_breaker(), 1, 2);
  const ServiceId svc{0};
  const ClusterId bad{1};

  // Below min_volume nothing trips, even at 100% failures.
  for (int i = 0; i < 9; ++i) bank.on_result(svc, bad, false, 0.1);
  EXPECT_TRUE(bank.allowed(svc, bad, 0.2));
  EXPECT_EQ(bank.state(svc, bad, 0.2), CircuitBreakerBank::State::kClosed);

  // The 10th failure crosses min_volume at 100% failure rate: open.
  bank.on_result(svc, bad, false, 0.2);
  EXPECT_EQ(bank.state(svc, bad, 0.2), CircuitBreakerBank::State::kOpen);
  EXPECT_FALSE(bank.allowed(svc, bad, 0.3));
  EXPECT_EQ(bank.ejections(), 1u);
  // The other cluster is untouched.
  EXPECT_TRUE(bank.allowed(svc, ClusterId{0}, 0.3));

  // After the 5s ejection the breaker admits probes (half-open)...
  EXPECT_TRUE(bank.allowed(svc, bad, 5.3));
  EXPECT_EQ(bank.state(svc, bad, 5.3), CircuitBreakerBank::State::kHalfOpen);
  // ...and two successful probes close it again.
  bank.on_result(svc, bad, true, 5.4);
  EXPECT_EQ(bank.state(svc, bad, 5.4), CircuitBreakerBank::State::kHalfOpen);
  bank.on_result(svc, bad, true, 5.5);
  EXPECT_EQ(bank.state(svc, bad, 5.5), CircuitBreakerBank::State::kClosed);
  EXPECT_TRUE(bank.allowed(svc, bad, 5.6));
}

TEST(CircuitBreaker, HalfOpenFailureReopensWithLongerEjection) {
  CircuitBreakerBank bank(test_breaker(), 1, 1);
  const ServiceId svc{0};
  const ClusterId c{0};
  for (int i = 0; i < 10; ++i) bank.on_result(svc, c, false, 0.1);
  ASSERT_EQ(bank.state(svc, c, 0.1), CircuitBreakerBank::State::kOpen);

  // Probe at 5.2 fails: re-open with 2x the base ejection (linear growth).
  EXPECT_TRUE(bank.allowed(svc, c, 5.2));
  bank.on_result(svc, c, false, 5.2);
  EXPECT_EQ(bank.state(svc, c, 5.2), CircuitBreakerBank::State::kOpen);
  EXPECT_EQ(bank.ejections(), 2u);
  EXPECT_FALSE(bank.allowed(svc, c, 5.2 + 9.9));   // still within 2 * 5s
  EXPECT_TRUE(bank.allowed(svc, c, 5.2 + 10.1));  // half-open again
}

TEST(CircuitBreaker, OldOutcomesAgeOutOfTheRollingWindow) {
  CircuitBreakerBank bank(test_breaker(), 1, 1);
  const ServiceId svc{0};
  const ClusterId c{0};
  // 9 failures, then a long quiet gap: the window forgets them, so 9 more
  // (each below min_volume within the live window) never trip.
  for (int i = 0; i < 9; ++i) bank.on_result(svc, c, false, 0.1);
  for (int i = 0; i < 9; ++i) bank.on_result(svc, c, false, 10.0);
  EXPECT_EQ(bank.state(svc, c, 10.0), CircuitBreakerBank::State::kClosed);
}

TEST(OverloadPolicy, ValidateRejectsBadKnobs) {
  OverloadPolicy p;
  p.queue.codel_target = -1.0;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = OverloadPolicy{};
  p.deadline.enabled = true;
  p.deadline.default_deadline = 0.0;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = OverloadPolicy{};
  p.deadline.per_class = {0.5, 0.5};
  EXPECT_THROW(p.validate(1), std::invalid_argument);  // out-of-range class

  p = OverloadPolicy{};
  p.breaker.enabled = true;
  p.breaker.failure_ratio = 1.5;
  EXPECT_THROW(p.validate(1), std::invalid_argument);

  p = OverloadPolicy{};
  p.queue.class_priority = {1, 2, 3};
  EXPECT_THROW(p.validate(2), std::invalid_argument);
}

// --- End-to-end: deadline propagation kills wasted work --------------------

TEST(DeadlinePropagation, CancelsExpiredWorkInsteadOfServingIt) {
  // A persistently overloaded local-only cluster (600 > ~500 RPS): queue
  // delay exceeds the 300ms deadline for most of the run.
  TwoClusterChainParams params;
  params.west_rps = 600.0;
  params.east_rps = 50.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);

  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 30.0;
  config.warmup = 5.0;
  config.seed = 3;
  config.overload.deadline.enabled = true;
  config.overload.deadline.default_deadline = 0.3;

  config.overload.deadline.propagate = true;
  const ExperimentResult with = run_experiment(scenario, config);
  config.overload.deadline.propagate = false;
  const ExperimentResult without = run_experiment(scenario, config);

  // Propagation cancels expired work before it reaches a server: zero
  // server-seconds wasted, and the cancellations show up as such.
  EXPECT_EQ(with.wasted_server_seconds, 0.0);
  EXPECT_GT(with.deadline_cancellations, 100u);
  // Without propagation the same deadlines are carried for accounting
  // only: expired work is served anyway and the waste is visible.
  EXPECT_GT(without.wasted_server_seconds, 1.0);
  EXPECT_EQ(without.deadline_cancellations, 0u);
}

TEST(DeadlinePropagation, BornDeadRedirectIsCancelledBeforeExecuteNode) {
  // The entry service is absent in West, so every West arrival redirects
  // to East over a 200ms one-way hop — but the class deadline is only
  // 150ms, so each request is already dead when it lands. Regression:
  // such requests must be cancelled at delivery (counted, not enqueued),
  // never handed to execute_node — even with propagation off, where they
  // previously ran the whole call tree as guaranteed-wasted work.
  TwoClusterChainParams params;
  params.rtt = 0.4;
  params.west_rps = 200.0;
  params.east_rps = 0.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.deployment->undeploy(scenario.app->find_service("ingress"),
                                ClusterId{0});

  for (bool propagate : {false, true}) {
    SCOPED_TRACE(propagate ? "propagate" : "accounting-only");
    RunConfig config;
    config.policy = PolicyKind::kLocalOnly;
    config.duration = 20.0;
    config.warmup = 5.0;
    config.seed = 11;
    config.overload.deadline.enabled = true;
    config.overload.deadline.default_deadline = 0.15;
    config.overload.deadline.propagate = propagate;
    const ExperimentResult r = run_experiment(scenario, config);

    EXPECT_GT(r.generated, 1000u);
    EXPECT_GT(r.deadline_cancellations, 1000u);
    // Born-dead work never reached a station: nothing submitted, nothing
    // served, no server time burned on it.
    EXPECT_EQ(r.jobs_submitted, 0u);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.wasted_server_seconds, 0.0);
  }
}

// --- End-to-end: the metastable-failure gauntlet ---------------------------

RunConfig burst_config(bool protected_run) {
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 55.0;
  config.warmup = 5.0;
  config.seed = 23;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  config.failure.retry_excludes_failed = false;  // local-only: nowhere else
  if (protected_run) {
    config.overload.queue.max_queue = 64;
    config.overload.deadline.enabled = true;
    config.overload.deadline.default_deadline = 0.5;
    config.overload.deadline.propagate = true;
  }
  return config;
}

Scenario burst_scenario() {
  TwoClusterChainParams params;
  params.west_rps = 420.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  const ClassId chain = scenario.app->find_class("chain");
  // 10s burst to ~3x capacity: [20, 30).
  scenario.demand.add_step(chain, ClusterId{0}, 20.0, 1500.0);
  scenario.demand.add_step(chain, ClusterId{0}, 30.0, params.west_rps);
  return scenario;
}

TEST(MetastableGauntlet, UnprotectedGoodputStaysCollapsedAfterTheBurst) {
  const Scenario scenario = burst_scenario();
  const ExperimentResult r = run_experiment(scenario, burst_config(false));
  const double pre = r.goodput_in_window(10.0, 20.0);
  const double post = r.goodput_in_window(40.0, 55.0);
  ASSERT_GT(pre, 100.0);
  // 10+ seconds after offered load returned below capacity, goodput is
  // still under half the healthy level: the backlog of timed-out work
  // sustains the failure (the metastable signature).
  EXPECT_LT(post, 0.5 * pre);
  EXPECT_GT(r.call_timeouts, 1000u);
}

TEST(MetastableGauntlet, OverloadControlReconvergesToPreBurstGoodput) {
  const Scenario scenario = burst_scenario();
  const ExperimentResult r = run_experiment(scenario, burst_config(true));
  const double pre = r.goodput_in_window(10.0, 20.0);
  const double post = r.goodput_in_window(40.0, 55.0);
  ASSERT_GT(pre, 100.0);
  // Same burst, same retries — but the burst was shed at admission and
  // expired work cancelled, so post-burst goodput is back to healthy.
  EXPECT_GE(post, 0.9 * pre);
  EXPECT_GT(r.total_shed(), 1000u);
  // Propagation means the shedding wasted no server time on zombies.
  EXPECT_EQ(r.wasted_server_seconds, 0.0);
}

// --- End-to-end: circuit breaker vs gray failure ---------------------------

TEST(CircuitBreakerEndToEnd, EjectsSlowReplicaAndRestoresGoodput) {
  TwoClusterChainParams params;
  params.west_rps = 300.0;
  params.east_rps = 100.0;
  params.east_servers = 2;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  // svc-1 in West turns 8x slower for [20, 50): slow, not down.
  scenario.faults.service_slowdown(scenario.app->find_service("svc-1"),
                                   ClusterId{0}, 20.0, 30.0, 8.0);

  RunConfig config;
  config.policy = PolicyKind::kLocalityFailover;
  config.duration = 60.0;
  config.warmup = 5.0;
  config.seed = 29;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.25;
  config.failure.max_retries = 1;

  const ExperimentResult naive = run_experiment(scenario, config);
  config.overload.breaker.enabled = true;
  const ExperimentResult protected_run = run_experiment(scenario, config);

  EXPECT_GE(protected_run.breaker_ejections, 1u);
  // The breaker fails over to East instead of feeding the slow replica.
  const double gray_naive = naive.goodput_in_window(25.0, 50.0);
  const double gray_breaker = protected_run.goodput_in_window(25.0, 50.0);
  EXPECT_GT(gray_breaker, gray_naive);
  EXPECT_LT(protected_run.failed, naive.failed / 2 + 1);
}

// --- Conservation & determinism --------------------------------------------

TEST(OverloadAccounting, JobConservationHoldsUnderBurstAndShedding) {
  const Scenario scenario = burst_scenario();
  for (bool protected_run : {false, true}) {
    SCOPED_TRACE(protected_run ? "protected" : "unprotected");
    const ExperimentResult r =
        run_experiment(scenario, burst_config(protected_run));
    // Every admitted job is accounted for exactly once.
    EXPECT_EQ(r.jobs_submitted, r.jobs_served + r.jobs_cancelled +
                                    r.jobs_evicted + r.jobs_in_flight_at_end);
    // Station-level shed/evicted match the result's shed counters.
    EXPECT_EQ(r.jobs_evicted, r.shed_evictions);
    EXPECT_GE(r.jobs_shed, r.shed_queue_full + r.shed_queue_delay);
  }
}

TEST(OverloadAccounting, DeterministicForSeed) {
  const Scenario scenario = burst_scenario();
  const ExperimentResult a = run_experiment(scenario, burst_config(true));
  const ExperimentResult b = run_experiment(scenario, burst_config(true));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.total_shed(), b.total_shed());
  EXPECT_EQ(a.deadline_cancellations, b.deadline_cancellations);
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

}  // namespace
}  // namespace slate
