// Unit tests for the application model: call graphs, applications, builders.
#include <gtest/gtest.h>

#include "app/application.h"
#include "app/builders.h"
#include "app/call_graph.h"

namespace slate {
namespace {

// --- CallGraph -------------------------------------------------------------

TEST(CallGraph, RootOnly) {
  CallGraph g;
  const std::size_t root = g.set_root(ServiceId{0}, 1e-3, 100, 200);
  EXPECT_EQ(root, 0u);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.node(0).parent, CallNode::kNoParent);
  g.validate();
}

TEST(CallGraph, DoubleRootThrows) {
  CallGraph g;
  g.set_root(ServiceId{0}, 1e-3, 0, 0);
  EXPECT_THROW(g.set_root(ServiceId{1}, 1e-3, 0, 0), std::logic_error);
}

TEST(CallGraph, InvalidServiceThrows) {
  CallGraph g;
  EXPECT_THROW(g.set_root(ServiceId{}, 1e-3, 0, 0), std::invalid_argument);
}

TEST(CallGraph, AddCallLinksParentChild) {
  CallGraph g;
  g.set_root(ServiceId{0}, 1e-3, 0, 0);
  const std::size_t child = g.add_call(0, ServiceId{1}, 2e-3, 10, 20);
  EXPECT_EQ(child, 1u);
  EXPECT_EQ(g.node(1).parent, 0u);
  EXPECT_EQ(g.node(0).children, std::vector<std::size_t>{1});
  EXPECT_EQ(g.node(1).request_bytes, 10u);
  EXPECT_EQ(g.node(1).response_bytes, 20u);
  g.validate();
}

TEST(CallGraph, BadParentThrows) {
  CallGraph g;
  g.set_root(ServiceId{0}, 1e-3, 0, 0);
  EXPECT_THROW(g.add_call(5, ServiceId{1}, 1e-3, 0, 0), std::out_of_range);
}

TEST(CallGraph, NonPositiveMultiplicityThrows) {
  CallGraph g;
  g.set_root(ServiceId{0}, 1e-3, 0, 0);
  EXPECT_THROW(g.add_call(0, ServiceId{1}, 1e-3, 0, 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(g.add_call(0, ServiceId{1}, 1e-3, 0, 0, -1.0),
               std::invalid_argument);
}

TEST(CallGraph, ExecutionsPerRequestMultipliesDownThePath) {
  CallGraph g;
  g.set_root(ServiceId{0}, 0, 0, 0);
  const std::size_t a = g.add_call(0, ServiceId{1}, 0, 0, 0, 2.0);
  const std::size_t b = g.add_call(a, ServiceId{2}, 0, 0, 0, 3.0);
  const std::size_t c = g.add_call(0, ServiceId{3}, 0, 0, 0, 0.5);
  EXPECT_DOUBLE_EQ(g.executions_per_request(0), 1.0);
  EXPECT_DOUBLE_EQ(g.executions_per_request(a), 2.0);
  EXPECT_DOUBLE_EQ(g.executions_per_request(b), 6.0);
  EXPECT_DOUBLE_EQ(g.executions_per_request(c), 0.5);
}

TEST(CallGraph, NodesForService) {
  CallGraph g;
  g.set_root(ServiceId{0}, 0, 0, 0);
  g.add_call(0, ServiceId{1}, 0, 0, 0);
  g.add_call(0, ServiceId{1}, 0, 0, 0);
  g.add_call(0, ServiceId{2}, 0, 0, 0);
  EXPECT_EQ(g.nodes_for_service(ServiceId{1}),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(g.nodes_for_service(ServiceId{9}).empty());
}

TEST(CallGraph, InvocationMode) {
  CallGraph g;
  g.set_root(ServiceId{0}, 0, 0, 0);
  EXPECT_EQ(g.node(0).mode, InvocationMode::kSequential);
  g.set_invocation_mode(0, InvocationMode::kParallel);
  EXPECT_EQ(g.node(0).mode, InvocationMode::kParallel);
}

// --- Application ------------------------------------------------------------

TEST(Application, ServicesAndLookup) {
  Application app;
  const ServiceId a = app.add_service("a");
  const ServiceId b = app.add_service("b");
  EXPECT_EQ(app.service_count(), 2u);
  EXPECT_EQ(app.service_name(a), "a");
  EXPECT_EQ(app.find_service("b"), b);
  EXPECT_FALSE(app.find_service("c").valid());
  EXPECT_THROW(app.add_service("a"), std::invalid_argument);
}

TEST(Application, ClassWithEmptyGraphThrows) {
  Application app;
  app.add_service("a");
  TrafficClassSpec spec;
  spec.name = "empty";
  EXPECT_THROW(app.add_class(std::move(spec)), std::invalid_argument);
}

TEST(Application, EntryServiceAndClassLookup) {
  Application app;
  const ServiceId front = app.add_service("front");
  app.add_service("back");
  TrafficClassSpec spec;
  spec.name = "k";
  spec.graph.set_root(front, 1e-3, 0, 0);
  const ClassId k = app.add_class(std::move(spec));
  EXPECT_EQ(app.entry_service(k), front);
  EXPECT_EQ(app.find_class("k"), k);
  EXPECT_FALSE(app.find_class("zzz").valid());
}

TEST(Application, ValidateCatchesUnknownService) {
  Application app;
  app.add_service("only");
  TrafficClassSpec spec;
  spec.name = "bad";
  spec.graph.set_root(ServiceId{5}, 1e-3, 0, 0);  // out of range
  app.add_class(std::move(spec));
  EXPECT_THROW(app.validate(), std::logic_error);
}

// --- Builders ------------------------------------------------------------------

TEST(Builders, LinearChainShape) {
  const Application app = make_linear_chain_app();
  EXPECT_EQ(app.service_count(), 4u);  // ingress + 3
  EXPECT_EQ(app.class_count(), 1u);
  const CallGraph& g = app.traffic_class(ClassId{0}).graph;
  EXPECT_EQ(g.node_count(), 4u);
  // Strictly linear: node i+1's parent is node i.
  for (std::size_t n = 1; n < g.node_count(); ++n) {
    EXPECT_EQ(g.node(n).parent, n - 1);
  }
  EXPECT_EQ(app.entry_service(ClassId{0}), app.find_service("ingress"));
}

TEST(Builders, LinearChainCustomLength) {
  LinearChainOptions options;
  options.chain_length = 5;
  const Application app = make_linear_chain_app(options);
  EXPECT_EQ(app.service_count(), 6u);
  EXPECT_EQ(app.traffic_class(ClassId{0}).graph.node_count(), 6u);
  EXPECT_THROW(make_linear_chain_app({.chain_length = 0}), std::invalid_argument);
}

TEST(Builders, AnomalyDetectionResponseBlowup) {
  AnomalyDetectionOptions options;
  options.mp_response_bytes = 100 * 1024;
  options.db_response_factor = 10.0;
  const Application app = make_anomaly_detection_app(options);
  const CallGraph& g = app.traffic_class(ClassId{0}).graph;
  ASSERT_EQ(g.node_count(), 3u);
  const CallNode& mp_call = g.node(1);
  const CallNode& db_call = g.node(2);
  EXPECT_EQ(mp_call.service, app.find_service("metrics-processor"));
  EXPECT_EQ(db_call.service, app.find_service("metrics-db"));
  // The DB -> MP response is 10x the MP -> FR response (the §4.3 premise).
  EXPECT_EQ(db_call.response_bytes, mp_call.response_bytes * 10);
}

TEST(Builders, TwoClassComputeGap) {
  const Application app = make_two_class_app();
  ASSERT_EQ(app.class_count(), 2u);
  const ClassId light = app.find_class("L");
  const ClassId heavy = app.find_class("H");
  ASSERT_TRUE(light.valid() && heavy.valid());
  const double light_compute =
      app.traffic_class(light).graph.node(1).compute_time_mean;
  const double heavy_compute =
      app.traffic_class(heavy).graph.node(1).compute_time_mean;
  EXPECT_DOUBLE_EQ(heavy_compute, 10.0 * light_compute);
  // Same entry service, different attributes -> distinct classes.
  EXPECT_EQ(app.entry_service(light), app.entry_service(heavy));
  EXPECT_NE(app.traffic_class(light).attributes.path,
            app.traffic_class(heavy).attributes.path);
}

TEST(Builders, FanoutCounts) {
  FanoutOptions options;
  options.width = 2;
  options.depth = 2;
  const Application app = make_fanout_app(options);
  EXPECT_EQ(app.service_count(), 7u);  // 1 + 2 + 4
  EXPECT_EQ(app.traffic_class(ClassId{0}).graph.node_count(), 7u);
}

TEST(Builders, SocialNetworkShape) {
  const Application app = make_social_network_app();
  EXPECT_EQ(app.service_count(), 8u);
  EXPECT_EQ(app.class_count(), 3u);
  app.validate();

  const ClassId read = app.find_class("read-timeline");
  ASSERT_TRUE(read.valid());
  const CallGraph& g = app.traffic_class(read).graph;
  EXPECT_EQ(g.node_count(), 6u);
  // The timeline node fans out in parallel.
  const auto timeline_nodes = g.nodes_for_service(app.find_service("timeline"));
  ASSERT_EQ(timeline_nodes.size(), 1u);
  EXPECT_EQ(g.node(timeline_nodes[0]).mode, InvocationMode::kParallel);
  EXPECT_EQ(g.node(timeline_nodes[0]).children.size(), 4u);
  // post-store is called twice per timeline read.
  const auto ps_nodes = g.nodes_for_service(app.find_service("post-store"));
  ASSERT_EQ(ps_nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(g.node(ps_nodes[0]).multiplicity, 2.0);
  // media is probabilistic in both read and write classes.
  const ClassId write = app.find_class("write-post");
  const auto media_write = app.traffic_class(write).graph.nodes_for_service(
      app.find_service("media"));
  ASSERT_EQ(media_write.size(), 1u);
  EXPECT_DOUBLE_EQ(
      app.traffic_class(write).graph.node(media_write[0]).multiplicity, 0.3);
}

TEST(Builders, FanoutParallelMode) {
  FanoutOptions options;
  options.width = 3;
  options.depth = 1;
  options.mode = InvocationMode::kParallel;
  const Application app = make_fanout_app(options);
  const CallGraph& g = app.traffic_class(ClassId{0}).graph;
  EXPECT_EQ(g.node(0).mode, InvocationMode::kParallel);
  EXPECT_EQ(g.node(0).children.size(), 3u);
}

}  // namespace
}  // namespace slate
