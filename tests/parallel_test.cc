#include "runtime/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/scenarios.h"

namespace slate {
namespace {

// --- WorkerPool ------------------------------------------------------------

TEST(WorkerPool, ExecutesSubmittedTasks) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i]() { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(WorkerPool, ReturnsValuesThroughFutures) {
  WorkerPool pool(2);
  auto f1 = pool.submit([]() { return 21 * 2; });
  auto f2 = pool.submit([]() { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(WorkerPool, ExceptionsPropagateThroughFutures) {
  WorkerPool pool(2);
  auto ok = pool.submit([]() { return 1; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("worker exploded");
  });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "worker exploded");
          throw;
        }
      },
      std::runtime_error);
}

TEST(WorkerPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
  }  // destructor must wait for all 50, not drop the queue
  EXPECT_EQ(ran.load(), 50);
}

TEST(WorkerPool, ZeroThreadsMeansHardwareConcurrency) {
  WorkerPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

// --- Grid determinism ------------------------------------------------------

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.egress_bytes, b.egress_bytes);
  EXPECT_EQ(a.egress_cost_dollars, b.egress_cost_dollars);
  EXPECT_EQ(a.call_retries, b.call_retries);
  EXPECT_EQ(a.call_timeouts, b.call_timeouts);
  EXPECT_EQ(a.call_rejections, b.call_rejections);
  EXPECT_EQ(a.admission_admitted, b.admission_admitted);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.admission_rate_raises, b.admission_rate_raises);
  EXPECT_EQ(a.admission_rate_cuts, b.admission_rate_cuts);
  EXPECT_EQ(a.server_seconds, b.server_seconds);
  EXPECT_EQ(a.server_cost_dollars, b.server_cost_dollars);
  // Byte-identical latency streams, not just equal summaries.
  ASSERT_EQ(a.e2e.samples().size(), b.e2e.samples().size());
  EXPECT_EQ(a.e2e.samples(), b.e2e.samples());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t k = 0; k < a.flows.size(); ++k) {
    ASSERT_EQ(a.flows[k].size(), b.flows[k].size());
    for (std::size_t n = 0; n < a.flows[k].size(); ++n) {
      EXPECT_EQ(a.flows[k][n].data(), b.flows[k][n].data());
    }
  }
}

std::vector<GridJob> determinism_jobs(const Scenario& scenario) {
  std::vector<GridJob> jobs;
  for (PolicyKind policy : {PolicyKind::kWaterfall, PolicyKind::kSlate}) {
    for (std::uint64_t seed : {3u, 4u, 5u}) {
      RunConfig config;
      config.policy = policy;
      config.duration = 8.0;
      config.warmup = 2.0;
      config.seed = seed;
      config.failure.enabled = true;
      config.failure.call_timeout = 0.5;
      jobs.push_back({&scenario, config, to_string(policy)});
    }
  }
  return jobs;
}

TEST(ExperimentGrid, ParallelResultsMatchSerialExactly) {
  TwoClusterChainParams params;
  params.west_rps = 500.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const std::vector<GridJob> jobs = determinism_jobs(scenario);

  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 8;
  const std::vector<ExperimentResult> a = run_experiment_grid(jobs, serial);
  const std::vector<ExperimentResult> b = run_experiment_grid(jobs, parallel);

  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
}

TEST(ExperimentGrid, ParallelMatchesSerialWithOverloadControlEnabled) {
  // The overload subsystem (bounded queues, deadlines, breakers) must not
  // introduce any cross-run shared state: byte-identity has to survive with
  // every gate armed and actively shedding.
  TwoClusterChainParams params;
  params.west_rps = 650.0;  // overloaded: the gates fire constantly
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  std::vector<GridJob> jobs = determinism_jobs(scenario);
  for (GridJob& job : jobs) {
    job.config.overload.queue.max_queue = 32;
    job.config.overload.queue.codel_target = 0.02;
    job.config.overload.deadline.enabled = true;
    job.config.overload.deadline.default_deadline = 0.4;
    job.config.overload.breaker.enabled = true;
    job.config.overload.breaker.min_volume = 10;
  }

  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 8;
  const std::vector<ExperimentResult> a = run_experiment_grid(jobs, serial);
  const std::vector<ExperimentResult> b = run_experiment_grid(jobs, parallel);

  ASSERT_EQ(a.size(), jobs.size());
  std::uint64_t overload_activity = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
    EXPECT_EQ(a[i].total_shed(), b[i].total_shed());
    EXPECT_EQ(a[i].deadline_cancellations, b[i].deadline_cancellations);
    EXPECT_EQ(a[i].breaker_ejections, b[i].breaker_ejections);
    EXPECT_EQ(a[i].jobs_submitted, b[i].jobs_submitted);
    overload_activity += a[i].total_shed() + a[i].deadline_cancellations;
  }
  // The comparison is vacuous unless the subsystem actually did something.
  EXPECT_GT(overload_activity, 0u);
}

TEST(ExperimentGrid, ParallelMatchesSerialWithAdmissionArmed) {
  // The front-door admission gate (token buckets + per-period adaptation)
  // must stay bit-deterministic across worker threads while actively
  // rejecting and retuning.
  TwoClusterChainParams params;
  params.west_rps = 650.0;  // overloaded: the gate fires constantly
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  std::vector<GridJob> jobs = determinism_jobs(scenario);
  for (GridJob& job : jobs) {
    job.config.admission.enabled = true;
    job.config.admission.default_rate = 400.0;
    job.config.admission.default_slo = 0.4;
    job.config.admission.target_attainment = 0.9;
  }

  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 8;
  const std::vector<ExperimentResult> a = run_experiment_grid(jobs, serial);
  const std::vector<ExperimentResult> b = run_experiment_grid(jobs, parallel);

  ASSERT_EQ(a.size(), jobs.size());
  std::uint64_t admission_activity = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
    EXPECT_EQ(a[i].generated,
              a[i].admission_admitted + a[i].admission_rejected);
    EXPECT_EQ(a[i].admission_adapt_rounds, b[i].admission_adapt_rounds);
    EXPECT_EQ(a[i].admission_floor_raises, b[i].admission_floor_raises);
    admission_activity += a[i].admission_rejected + a[i].admission_rate_cuts;
  }
  // The comparison is vacuous unless the gate actually did something.
  EXPECT_GT(admission_activity, 0u);
}

TEST(ExperimentGrid, ParallelMatchesSerialWithGuardArmed) {
  // The control-plane guard stack (telemetry admission, solver fallback
  // ladder, canary rollout) must stay bit-deterministic across worker
  // threads even while actively clamping corrupted reports and riding out
  // a solver outage.
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.telemetry_corruption(ClusterId{0}, 3.0, 8.0, 8.0);
  scenario.faults.solver_outage(5.0, 3.0);
  scenario.guard.admission.enabled = true;
  scenario.guard.solver.enabled = true;
  scenario.guard.rollout.enabled = true;

  std::vector<GridJob> jobs;
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    RunConfig config;
    config.policy = PolicyKind::kSlate;
    config.duration = 14.0;
    config.warmup = 2.0;
    config.seed = seed;
    config.failure.enabled = true;
    config.failure.call_timeout = 0.5;
    jobs.push_back({&scenario, config, "guarded"});
  }

  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 8;
  const std::vector<ExperimentResult> a = run_experiment_grid(jobs, serial);
  const std::vector<ExperimentResult> b = run_experiment_grid(jobs, parallel);

  ASSERT_EQ(a.size(), jobs.size());
  std::uint64_t guard_activity = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
    EXPECT_EQ(a[i].guard_fields_rejected, b[i].guard_fields_rejected);
    EXPECT_EQ(a[i].guard_spikes_clamped, b[i].guard_spikes_clamped);
    EXPECT_EQ(a[i].solver_fallbacks, b[i].solver_fallbacks);
    EXPECT_EQ(a[i].solver_holds, b[i].solver_holds);
    EXPECT_EQ(a[i].rollout_rollbacks, b[i].rollout_rollbacks);
    EXPECT_EQ(a[i].rollout_flap_freezes, b[i].rollout_flap_freezes);
    EXPECT_EQ(a[i].rule_pushes, b[i].rule_pushes);
    EXPECT_EQ(a[i].rule_delta_sum, b[i].rule_delta_sum);
    guard_activity += a[i].guard_spikes_clamped + a[i].guard_fields_rejected +
                      a[i].solver_fallbacks;
  }
  // The comparison is vacuous unless the guard actually did something.
  EXPECT_GT(guard_activity, 0u);
}

TEST(ExperimentGrid, ParallelMatchesSerialWithDrainAndContingencyArmed) {
  // The contingency subsystem (N-1 margin checks, padded re-solves) and a
  // mid-run coordinated drain both live on the control timeline; neither
  // may leak state across grid workers.
  TwoClusterChainParams params;
  params.west_rps = 500.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  std::vector<GridJob> jobs = determinism_jobs(scenario);
  for (GridJob& job : jobs) {
    job.config.slate.contingency.enabled = true;
    DrainSpec drain;
    drain.cluster = ClusterId{1};
    drain.start = 3.0;
    drain.over = 3.0;
    job.config.drains.push_back(drain);
  }

  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 8;
  const std::vector<ExperimentResult> a = run_experiment_grid(jobs, serial);
  const std::vector<ExperimentResult> b = run_experiment_grid(jobs, parallel);

  ASSERT_EQ(a.size(), jobs.size());
  std::uint64_t contingency_activity = 0;
  std::uint64_t drain_activity = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
    EXPECT_EQ(a[i].contingency_evals, b[i].contingency_evals);
    EXPECT_EQ(a[i].contingency_resolves, b[i].contingency_resolves);
    EXPECT_EQ(a[i].contingency_margin_worst, b[i].contingency_margin_worst);
    EXPECT_EQ(a[i].drains_started, b[i].drains_started);
    EXPECT_EQ(a[i].drain_steps, b[i].drain_steps);
    EXPECT_EQ(a[i].drain_pause_periods, b[i].drain_pause_periods);
    contingency_activity += a[i].contingency_evals;
    drain_activity += a[i].drain_steps;
  }
  // Vacuous unless both subsystems actually engaged somewhere in the grid
  // (contingency only arms under SLATE; the drain runs under every policy).
  EXPECT_GT(contingency_activity, 0u);
  EXPECT_GT(drain_activity, 0u);
}

TEST(ExperimentGrid, ResultsComeBackInJobOrder) {
  TwoClusterChainParams params;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  std::vector<GridJob> jobs;
  // Distinguish jobs by seed so each result is attributable.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunConfig config;
    config.policy = PolicyKind::kLocalOnly;
    config.duration = 6.0;
    config.warmup = 1.0;
    config.seed = seed;
    jobs.push_back({&scenario, config, "job"});
  }

  const std::vector<ExperimentResult> grid =
      run_experiment_grid(jobs, GridOptions{4, nullptr});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ExperimentResult direct =
        run_experiment(scenario, jobs[i].config);
    EXPECT_EQ(grid[i].completed, direct.completed) << "job " << i;
    EXPECT_EQ(grid[i].e2e.samples(), direct.e2e.samples()) << "job " << i;
  }
}

TEST(ExperimentGrid, ProgressCallbackSeesEveryCompletion) {
  TwoClusterChainParams params;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  std::vector<GridJob> jobs;
  for (int i = 0; i < 5; ++i) {
    RunConfig config;
    config.policy = PolicyKind::kLocalOnly;
    config.duration = 4.0;
    config.warmup = 1.0;
    config.seed = static_cast<std::uint64_t>(i + 1);
    jobs.push_back({&scenario, config, "p"});
  }
  std::vector<std::size_t> seen;
  GridOptions options;
  options.jobs = 3;
  options.progress = [&seen](std::size_t finished, std::size_t total) {
    EXPECT_EQ(total, 5u);
    seen.push_back(finished);
  };
  run_experiment_grid(jobs, options);
  ASSERT_EQ(seen.size(), 5u);
  // The callback runs under a mutex with a monotone counter.
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(ExperimentGrid, FirstFailingJobsExceptionRethrows) {
  TwoClusterChainParams params;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  std::vector<GridJob> jobs;
  for (int i = 0; i < 3; ++i) {
    RunConfig config;
    config.policy = PolicyKind::kLocalOnly;
    config.duration = 4.0;
    config.warmup = 1.0;
    jobs.push_back({&scenario, config, "x"});
  }
  jobs[1].config.warmup = 10.0;  // warmup >= duration: Simulation throws
  EXPECT_THROW(run_experiment_grid(jobs, GridOptions{2, nullptr}),
               std::invalid_argument);
}

// --- Replication helpers ---------------------------------------------------

TEST(ReplicateSeed, IndexZeroIsBaseSeed) {
  EXPECT_EQ(replicate_seed(12345, 0), 12345u);
  EXPECT_EQ(replicate_seed(0, 0), 0u);
}

TEST(ReplicateSeed, DerivedSeedsAreDistinct) {
  const std::uint64_t base = 42;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) seeds.push_back(replicate_seed(base, i));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
    }
  }
  // Deterministic across calls.
  EXPECT_EQ(replicate_seed(base, 7), replicate_seed(base, 7));
}

TEST(MeanCi95, SmallSamples) {
  EXPECT_EQ(mean_ci95({}).n, 0u);
  EXPECT_EQ(mean_ci95({}).mean, 0.0);
  const MeanCI one = mean_ci95({5.0});
  EXPECT_EQ(one.mean, 5.0);
  EXPECT_EQ(one.ci95, 0.0);
  EXPECT_EQ(one.n, 1u);
}

TEST(MeanCi95, MatchesHandComputation) {
  const MeanCI ci = mean_ci95({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  // stddev = sqrt(20/3); ci95 = 1.96 * stddev / sqrt(4)
  EXPECT_NEAR(ci.ci95, 1.96 * std::sqrt(20.0 / 3.0) / 2.0, 1e-12);
  EXPECT_EQ(ci.n, 4u);
}

}  // namespace
}  // namespace slate
