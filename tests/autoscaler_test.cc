// Tests for dynamic station capacity: set_servers, the Autoscaler control
// loop, and capacity/failure events through the full simulation.
#include <gtest/gtest.h>

#include "cluster/autoscaler.h"
#include "cluster/service_station.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

// Drives `station` open-loop at `rate` until `until`.
void drive(Simulator& sim, ServiceStation& station, Rng& rng, double rate,
           double service_mean, double until) {
  auto arrive = std::make_shared<std::function<void()>>();
  *arrive = [&sim, &station, &rng, rate, service_mean, until, arrive]() {
    station.submit(service_mean,
                   [](ServiceStation::JobOutcome, double, double) {});
    const double gap = rng.exponential(1.0 / rate);
    if (sim.now() + gap < until) {
      sim.schedule_after(gap, *arrive);
    } else {
      *arrive = nullptr;  // break self-reference
    }
  };
  sim.schedule_at(sim.now(), *arrive);
}

// --- ServiceStation::set_servers -----------------------------------------------

TEST(SetServers, GrowDispatchesQueuedJobs) {
  Simulator sim;
  ServiceStation st(sim, Rng(1), ServiceId{0}, ClusterId{0}, 1);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    st.submit(1.0, [&](ServiceStation::JobOutcome, double, double) { ++done; });
  }
  sim.run_until(0.0);
  EXPECT_EQ(st.busy_servers(), 1u);
  EXPECT_EQ(st.queue_length(), 3u);
  st.set_servers(4);
  sim.run_until(0.0);
  EXPECT_EQ(st.busy_servers(), 4u);
  EXPECT_EQ(st.queue_length(), 0u);
  sim.run_until(60.0);
  EXPECT_EQ(done, 4);
}

TEST(SetServers, ShrinkDoesNotPreempt) {
  Simulator sim;
  ServiceStation st(sim, Rng(2), ServiceId{0}, ClusterId{0}, 3);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    st.submit(1.0, [&](ServiceStation::JobOutcome, double, double) { ++done; });
  }
  sim.run_until(0.0);
  EXPECT_EQ(st.busy_servers(), 3u);
  st.set_servers(1);
  // All three in-flight jobs still complete.
  sim.run_until(60.0);
  EXPECT_EQ(done, 3);
  // New work runs at the reduced parallelism.
  for (int i = 0; i < 2; ++i) {
    st.submit(1.0, [&](ServiceStation::JobOutcome, double, double) {});
  }
  sim.run_until(60.0);
  EXPECT_EQ(st.busy_servers(), 1u);
}

TEST(SetServers, ZeroThrows) {
  Simulator sim;
  ServiceStation st(sim, Rng(3), ServiceId{0}, ClusterId{0}, 2);
  EXPECT_THROW(st.set_servers(0), std::invalid_argument);
}

// --- Autoscaler -----------------------------------------------------------------

TEST(Autoscaler, ScalesUpUnderOverloadAfterDelay) {
  Simulator sim;
  Rng rng(5);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 1);
  AutoscalerOptions options;
  options.target_utilization = 0.6;
  options.evaluation_period = 5.0;
  options.provision_delay = 10.0;
  options.cooldown = 1.0;
  std::vector<double> scale_times;
  Autoscaler scaler(sim, st, options, [&](unsigned, unsigned) {
    scale_times.push_back(sim.now());
  });

  Rng arrivals = rng.fork(1);
  drive(sim, st, arrivals, 900.0, 1e-3, 120.0);  // u = 0.9 on one server
  sim.run_until(120.0);

  EXPECT_GE(scaler.scale_ups(), 1u);
  EXPECT_GE(st.servers(), 2u);
  ASSERT_FALSE(scale_times.empty());
  // First decision at t=5 takes effect no earlier than t=15.
  EXPECT_GE(scale_times.front(), options.evaluation_period +
                                     options.provision_delay - 1e-9);
}

TEST(Autoscaler, ScalesDownWhenIdle) {
  Simulator sim;
  Rng rng(7);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 8);
  AutoscalerOptions options;
  options.evaluation_period = 5.0;
  options.cooldown = 1.0;
  options.min_servers = 2;
  Autoscaler scaler(sim, st, options);

  Rng arrivals = rng.fork(1);
  drive(sim, st, arrivals, 100.0, 1e-3, 120.0);  // u = 0.0125 on 8 servers
  sim.run_until(120.0);

  EXPECT_GE(scaler.scale_downs(), 1u);
  EXPECT_EQ(st.servers(), 2u);  // clamped at min_servers
}

TEST(Autoscaler, DeadbandPreventsFlapping) {
  Simulator sim;
  Rng rng(9);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 2);
  AutoscalerOptions options;
  options.target_utilization = 0.5;
  options.evaluation_period = 5.0;
  options.cooldown = 0.0;
  options.deadband = 0.15;
  Autoscaler scaler(sim, st, options);

  Rng arrivals = rng.fork(1);
  drive(sim, st, arrivals, 1000.0, 1e-3, 200.0);  // u = 0.5: on target
  sim.run_until(200.0);
  EXPECT_EQ(scaler.scale_ups() + scaler.scale_downs(), 0u);
  EXPECT_EQ(st.servers(), 2u);
}

TEST(Autoscaler, CooldownLimitsDecisionRate) {
  Simulator sim;
  Rng rng(11);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 1);
  AutoscalerOptions options;
  options.evaluation_period = 1.0;
  options.cooldown = 50.0;
  options.provision_delay = 0.1;
  Autoscaler scaler(sim, st, options);

  Rng arrivals = rng.fork(1);
  drive(sim, st, arrivals, 950.0, 1e-3, 99.0);
  sim.run_until(99.0);
  // With a 50s cooldown, at most 2 decisions fit in 99s.
  EXPECT_LE(scaler.scale_ups() + scaler.scale_downs(), 2u);
}

TEST(Autoscaler, BadOptionsThrow) {
  Simulator sim;
  ServiceStation st(sim, Rng(1), ServiceId{0}, ClusterId{0}, 1);
  AutoscalerOptions bad;
  bad.target_utilization = 1.5;
  EXPECT_THROW(Autoscaler(sim, st, bad), std::invalid_argument);
  AutoscalerOptions bounds;
  bounds.min_servers = 5;
  bounds.max_servers = 2;
  EXPECT_THROW(Autoscaler(sim, st, bounds), std::invalid_argument);
  AutoscalerOptions align;
  align.align_period = -1.0;
  EXPECT_THROW(Autoscaler(sim, st, align), std::invalid_argument);
}

// A shared cooldown couples the directions: an early scale-down pushes the
// next scale-up past the horizon. Split timers gate each direction on its
// own last decision. Defaults (-1) preserve the coupled legacy behavior.
TEST(Autoscaler, SplitCooldownDecouplesDirections) {
  EXPECT_LT(AutoscalerOptions{}.up_cooldown, 0.0);
  EXPECT_LT(AutoscalerOptions{}.down_cooldown, 0.0);
  // Quiet first window (down to 1 at t=5), then a hot phase from t=10.
  const auto run = [](AutoscalerOptions options) {
    Simulator sim;
    Rng rng(13);
    ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 8);
    Autoscaler scaler(sim, st, options);
    Rng quiet = rng.fork(1);
    Rng hot = rng.fork(2);
    drive(sim, st, quiet, 100.0, 1e-3, 10.0);
    sim.schedule_at(10.0, [&] { drive(sim, st, hot, 700.0, 1e-3, 60.0); });
    sim.run_until(60.0);
    return std::pair<unsigned, unsigned>{scaler.scale_ups(),
                                         scaler.scale_downs()};
  };

  AutoscalerOptions shared;
  shared.evaluation_period = 5.0;
  shared.cooldown = 1000.0;
  shared.provision_delay = 1.0;
  const auto [shared_ups, shared_downs] = run(shared);
  EXPECT_GE(shared_downs, 1u);
  EXPECT_EQ(shared_ups, 0u);  // the down's cooldown starves the hot phase

  AutoscalerOptions split = shared;
  split.up_cooldown = 0.0;
  split.down_cooldown = 1000.0;
  const auto [split_ups, split_downs] = run(split);
  EXPECT_GE(split_downs, 1u);
  EXPECT_GE(split_ups, 1u);  // ups no longer pay for the down
}

// align_period snaps the evaluation cadence onto the control-period grid:
// evaluation_period 2.5 on a 1s grid rounds up to every 3rd tick, so the
// first decision lands at t=3.0 instead of the free-running t=2.5.
TEST(Autoscaler, AlignPeriodSnapsEvaluationToGrid) {
  const auto first_decision = [](double align) {
    Simulator sim;
    Rng rng(15);
    ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 8);
    AutoscalerOptions options;
    options.evaluation_period = 2.5;
    options.align_period = align;
    std::vector<double> times;
    Autoscaler scaler(sim, st, options,
                      [&](unsigned, unsigned) { times.push_back(sim.now()); });
    Rng arrivals = rng.fork(1);
    drive(sim, st, arrivals, 100.0, 1e-3, 10.0);  // idle: scales down
    sim.run_until(10.0);
    EXPECT_FALSE(times.empty());
    return times.empty() ? -1.0 : times.front();
  };
  EXPECT_DOUBLE_EQ(first_decision(0.0), 2.5);  // free-running default
  EXPECT_DOUBLE_EQ(first_decision(1.0), 3.0);  // snapped to the grid
}

// A scale-up already in flight when a drain inhibits the station still
// completes at its ready time: the drain stops new decisions, not
// provisioning that was already paid for.
TEST(Autoscaler, InFlightProvisioningCompletesUnderInhibit) {
  Simulator sim;
  Rng rng(17);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 1);
  AutoscalerOptions options;
  options.target_utilization = 0.5;
  options.evaluation_period = 1.0;
  options.provision_delay = 5.0;
  Autoscaler scaler(sim, st, options);
  // Planned load forces an up at t=1 (ready t=6); the drain lands at t=3.
  scaler.set_planned_load(2.0, 100.0);
  sim.schedule_at(3.0, [&] { scaler.set_scale_up_inhibited(true); });
  sim.run_until(7.0);
  EXPECT_TRUE(scaler.scale_up_inhibited());
  EXPECT_EQ(scaler.scale_ups(), 1u);
  EXPECT_EQ(st.servers(), 4u);  // ceil(2.0 / 0.5) landed despite the inhibit
}

// min_servers == max_servers pins the fleet: overload proposes more but the
// clamp makes every proposal a no-op, so no decisions are ever recorded.
TEST(Autoscaler, MinEqualsMaxPinsFleet) {
  Simulator sim;
  Rng rng(19);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 3);
  AutoscalerOptions options;
  options.evaluation_period = 2.0;
  options.cooldown = 0.0;
  options.min_servers = 3;
  options.max_servers = 3;
  Autoscaler scaler(sim, st, options);
  Rng arrivals = rng.fork(1);
  drive(sim, st, arrivals, 2700.0, 1e-3, 60.0);  // u ~ 0.9 on 3 servers
  sim.run_until(60.0);
  EXPECT_EQ(scaler.scale_ups() + scaler.scale_downs(), 0u);
  EXPECT_EQ(st.servers(), 3u);
}

// The deadband is inclusive: a ratio of exactly target*(1+deadband) holds.
// Dyadic values (target 0.5, deadband 0.25, planned busy 2.5 on 4 servers
// -> ratio exactly 1.25) make the boundary exact in floating point.
TEST(Autoscaler, DeadbandBoundaryIsInclusive) {
  Simulator sim;
  Rng rng(21);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 4);
  AutoscalerOptions options;
  options.target_utilization = 0.5;
  options.evaluation_period = 1.0;
  options.cooldown = 0.0;
  options.deadband = 0.25;
  options.provision_delay = 0.1;
  Autoscaler scaler(sim, st, options);
  scaler.set_planned_load(2.5, 1.2);  // ratio 1.25: exactly on the boundary
  sim.schedule_at(1.4, [&] {
    EXPECT_EQ(scaler.scale_ups() + scaler.scale_downs(), 0u);
    scaler.set_planned_load(2.625, 100.0);  // ratio 1.3125: just outside
  });
  sim.run_until(3.0);
  EXPECT_EQ(scaler.scale_ups(), 1u);
  EXPECT_EQ(scaler.scale_downs(), 0u);
  EXPECT_EQ(st.servers(), 6u);  // ceil(4 * 1.3125)
}

// effective_servers: the time-weighted provisioning ladder the bi-level
// coordinator feeds the solver as a capacity overlay.
TEST(Autoscaler, EffectiveServersWeighsPendingScaleUps) {
  Simulator sim;
  Rng rng(23);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 1);
  AutoscalerOptions options;
  options.target_utilization = 0.5;
  options.evaluation_period = 1.0;
  options.provision_delay = 10.0;
  Autoscaler scaler(sim, st, options);
  scaler.set_planned_load(2.0, 100.0);  // up to 4 at t=1, ready t=11
  sim.schedule_at(2.0, [&] {
    EXPECT_EQ(st.servers(), 1u);
    EXPECT_EQ(scaler.effective_servers(0.0), 1u);  // horizon<=0: live fleet
    EXPECT_EQ(scaler.effective_servers(5.0), 1u);  // ready outside horizon
    // Over [2, 22]: 1 server for 9s then 4 for 11s = 53/20 -> floor 2.
    EXPECT_EQ(scaler.effective_servers(20.0), 2u);
  });
  sim.schedule_at(12.0, [&] {
    EXPECT_EQ(st.servers(), 4u);
    EXPECT_EQ(scaler.effective_servers(5.0), 4u);
  });
  sim.run_until(15.0);
}

// --- Capacity events & interaction through the full simulation --------------------

TEST(CapacityEvents, FailureDegradesLocalOnly) {
  TwoClusterChainParams params;
  params.west_rps = 350.0;
  params.east_rps = 100.0;
  params.west_servers = 2;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 50.0;
  config.warmup = 25.0;
  config.seed = 13;

  const ExperimentResult healthy = run_experiment(scenario, config);

  // Lose one of West's two svc-1 replicas at t=20 (before measurement).
  config.capacity_events.push_back(CapacityEvent{
      20.0, scenario.app->find_service("svc-1"), ClusterId{0}, 1});
  const ExperimentResult degraded = run_experiment(scenario, config);

  // 350 RPS on one 500-RPS server: u = 0.7 vs 0.35 — latency clearly up.
  EXPECT_GT(degraded.mean_latency(), healthy.mean_latency() * 1.2);
  EXPECT_EQ(degraded.final_servers[scenario.app->find_service("svc-1").index() * 2 +
                                   0],
            1u);
}

TEST(CapacityEvents, SlateRoutesAroundFailure) {
  TwoClusterChainParams params;
  params.west_rps = 450.0;  // u = 0.9 on the surviving replica
  params.east_rps = 100.0;
  params.west_servers = 2;
  params.east_servers = 2;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RunConfig config;
  config.duration = 70.0;
  config.warmup = 40.0;  // failure at 20, leave time to adapt
  config.seed = 17;
  config.capacity_events.push_back(CapacityEvent{
      20.0, scenario.app->find_service("svc-1"), ClusterId{0}, 1});

  config.policy = PolicyKind::kLocalityFailover;  // static: keeps serving local
  const ExperimentResult failover = run_experiment(scenario, config);
  config.policy = PolicyKind::kSlate;
  const ExperimentResult slate = run_experiment(scenario, config);

  // SLATE's live-server feedback detects the lost replica and offloads.
  EXPECT_GT(slate.remote_fraction_from(ClassId{0}, 1, ClusterId{0}), 0.1);
  EXPECT_LT(slate.mean_latency(), failover.mean_latency());
}

TEST(CapacityEvents, UndeployedTargetThrows) {
  const Scenario scenario = make_anomaly_scenario({});
  RunConfig config;
  config.duration = 5.0;
  config.warmup = 1.0;
  // DB is not deployed in West.
  config.capacity_events.push_back(CapacityEvent{
      1.0, scenario.app->find_service("metrics-db"), ClusterId{0}, 2});
  EXPECT_THROW(run_experiment(scenario, config), std::invalid_argument);
}

TEST(AutoscalerIntegration, ScalesOutUnderBurstAndHelpsLatency) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;  // sustained overload for one server
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);

  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 120.0;
  config.warmup = 80.0;  // measure after scaling settles
  config.seed = 19;

  config.autoscaler_enabled = true;
  config.autoscaler.target_utilization = 0.6;
  config.autoscaler.evaluation_period = 10.0;
  config.autoscaler.provision_delay = 20.0;
  config.autoscaler.cooldown = 10.0;
  const ExperimentResult scaled = run_experiment(scenario, config);

  config.autoscaler_enabled = false;
  const ExperimentResult fixed = run_experiment(scenario, config);

  EXPECT_GE(scaled.autoscaler_scale_ups, 1u);
  // After scaling, west can serve 800 RPS locally at sane utilization.
  EXPECT_LT(scaled.mean_latency(), fixed.mean_latency() * 0.5);
  const ServiceId svc1 = scenario.app->find_service("svc-1");
  EXPECT_GE(scaled.final_servers[svc1.index() * 2 + 0], 2u);
}

}  // namespace
}  // namespace slate
