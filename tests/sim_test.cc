// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace slate {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeEventsRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterNegativeClamped) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(-5.0, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Simulator, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_after(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(5.0, [&] { ++count; });
  const auto ran = sim.run_until(3.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 3.0);  // clock advanced to the horizon
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventAtHorizonRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(3.0, [&] { ran = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending(), 1u);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, PeriodicFiresAtInterval) {
  Simulator sim;
  std::vector<double> fire_times;
  auto handle = sim.schedule_periodic(2.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(fire_times, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_TRUE(handle.active());
}

TEST(Simulator, PeriodicCancel) {
  Simulator sim;
  int fires = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(1.0, [&] {
    if (++fires == 3) handle.cancel();
  });
  sim.run_until(10.0);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(handle.active());
}

TEST(Simulator, PeriodicCancelReleasesClosure) {
  // A cancelled periodic must free its closure immediately, not hold it
  // until the simulator is destroyed.
  Simulator sim;
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> weak = tracked;
  auto handle = sim.schedule_periodic(1.0, [tracked] {});
  tracked.reset();
  sim.run_until(2.5);
  EXPECT_FALSE(weak.expired());
  handle.cancel();
  EXPECT_TRUE(weak.expired()) << "cancel() leaked the periodic closure";
  sim.run_until(10.0);  // pending ticks for the dead task must be inert
}

TEST(Simulator, PeriodicSelfCancelReleasesClosureAfterTick) {
  // cancel() from inside the callback defers the release until the tick
  // returns (the closure is executing), but must still happen.
  Simulator sim;
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> weak = tracked;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(1.0, [&handle, tracked] { handle.cancel(); });
  tracked.reset();
  sim.run_until(5.0);
  EXPECT_TRUE(weak.expired());
}

TEST(Simulator, PeriodicBadIntervalThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_periodic(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, DefaultHandleCancelIsNoOp) {
  Simulator::PeriodicHandle handle;
  EXPECT_FALSE(handle.active());
  handle.cancel();  // must not crash
}

TEST(Simulator, ScopedPeriodicCancelsOnDestroy) {
  Simulator sim;
  int fires = 0;
  {
    Simulator::ScopedPeriodic scoped =
        sim.schedule_scoped_periodic(1.0, [&] { ++fires; });
    EXPECT_TRUE(scoped.active());
    sim.run_until(3.5);
    EXPECT_EQ(fires, 3);
    EXPECT_TRUE(scoped.active());
  }
  sim.run_until(10.0);
  EXPECT_EQ(fires, 3);  // destroyed handle fired nothing further
}

TEST(Simulator, ScopedPeriodicMoveTransfersOwnership) {
  Simulator sim;
  int fires = 0;
  Simulator::ScopedPeriodic outer;
  {
    Simulator::ScopedPeriodic inner =
        sim.schedule_scoped_periodic(1.0, [&] { ++fires; });
    outer = std::move(inner);
    // inner's destructor must not cancel the moved-from task.
  }
  sim.run_until(2.5);
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(outer.active());
}

TEST(Simulator, ScopedPeriodicMoveAssignCancelsPrevious) {
  Simulator sim;
  int a = 0, b = 0;
  auto scoped = sim.schedule_scoped_periodic(1.0, [&] { ++a; });
  sim.run_until(2.5);
  scoped = sim.schedule_scoped_periodic(1.0, [&] { ++b; });
  sim.run_until(5.5);
  EXPECT_EQ(a, 2);  // cancelled by the assignment
  EXPECT_EQ(b, 3);  // fires at 3.5, 4.5, 5.5
}

TEST(Simulator, ScopedPeriodicExplicitCancel) {
  Simulator sim;
  int fires = 0;
  auto scoped = sim.schedule_scoped_periodic(1.0, [&] { ++fires; });
  sim.run_until(1.5);
  scoped.cancel();
  EXPECT_FALSE(scoped.active());
  sim.run_until(10.0);
  EXPECT_EQ(fires, 1);
}

TEST(Simulator, TwoPeriodicTasksInterleave) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_periodic(2.0, [&] { order.push_back(2); });
  sim.schedule_periodic(3.0, [&] { order.push_back(3); });
  sim.run_until(6.0);
  // t=2: A, t=3: B, t=4: A, t=6: both — B first (it was rescheduled at
  // t=3, before A's t=4 reschedule, and same-time events run in scheduling
  // order).
  EXPECT_EQ(order, (std::vector<int>{2, 3, 2, 3, 2}));
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.events_executed(), 10000u);
}

// --- Calendar queue vs heap ------------------------------------------------
//
// Above the engagement threshold the pending set migrates from the 4-ary
// heap into the bucketed calendar. The two tiers must be observationally
// identical: same execution order (including same-time ties, which run in
// scheduling order), same clock behavior at run_until boundaries.

// Executes the same deterministic storm on both queue tiers and returns the
// two execution logs. The storm mixes duplicate timestamps (ties), events
// scheduling more events mid-run, and run_until boundary stops.
std::pair<std::vector<int>, std::vector<int>> storm_logs(std::size_t threshold_a,
                                                         std::size_t threshold_b) {
  auto run = [](std::size_t threshold) {
    Simulator sim;
    sim.set_calendar_threshold(threshold);
    std::vector<int> log;
    int next_id = 0;
    // Deterministic pseudo-random times with heavy tie collisions.
    for (int i = 0; i < 20000; ++i) {
      const double t = static_cast<double>((i * 7919) % 500) * 0.01;
      const int id = next_id++;
      sim.schedule_at(t, [&log, &sim, &next_id, id, t] {
        log.push_back(id);
        if (id % 7 == 0) {
          // Events scheduling events: land some in the current bucket, some
          // far beyond the calendar's horizon.
          const int child = next_id++;
          sim.schedule_after((id % 3) * 0.25, [&log, child] { log.push_back(child); });
        }
        (void)t;
      });
    }
    // Boundary stops: an event exactly at the horizon must run, later ones
    // must not.
    sim.run_until(1.0);
    sim.run_until(2.5);
    sim.run();
    return log;
  };
  return {run(threshold_a), run(threshold_b)};
}

TEST(Simulator, CalendarMatchesHeapOrdering) {
  // 64: engages almost immediately. SIZE_MAX: pure heap, never engages.
  const auto [calendar, heap] = storm_logs(64, static_cast<std::size_t>(-1));
  ASSERT_EQ(calendar.size(), heap.size());
  EXPECT_EQ(calendar, heap);
}

TEST(Simulator, CalendarEngagesAboveThresholdOnly) {
  Simulator heapy;
  heapy.set_calendar_threshold(static_cast<std::size_t>(-1));
  Simulator cal;
  cal.set_calendar_threshold(100);
  for (int i = 0; i < 500; ++i) {
    heapy.schedule_at(i * 0.001, [] {});
    cal.schedule_at(i * 0.001, [] {});
  }
  EXPECT_FALSE(heapy.calendar_engaged());
  EXPECT_TRUE(cal.calendar_engaged());
  heapy.run();
  cal.run();
  EXPECT_EQ(heapy.events_executed(), cal.events_executed());
}

TEST(Simulator, CalendarSameTimeTiesRunInSchedulingOrder) {
  Simulator sim;
  sim.set_calendar_threshold(8);
  std::vector<int> log;
  // All at the same instant, plus enough filler to engage the calendar.
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(1.0, [&log, i] { log.push_back(i); });
  }
  ASSERT_TRUE(sim.calendar_engaged());
  sim.run();
  ASSERT_EQ(log.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(log[i], i);
}

TEST(Simulator, CalendarPeriodicMatchesHeapPeriodic) {
  auto run = [](std::size_t threshold) {
    Simulator sim;
    sim.set_calendar_threshold(threshold);
    std::vector<double> ticks;
    auto handle = sim.schedule_periodic(0.125, [&] { ticks.push_back(sim.now()); });
    // Filler population so the calendar tier actually engages.
    for (int i = 0; i < 4000; ++i) sim.schedule_at(i * 0.003, [] {});
    sim.run_until(10.0);
    handle.cancel();
    return ticks;
  };
  const auto a = run(16);
  const auto b = run(static_cast<std::size_t>(-1));
  EXPECT_EQ(a, b);
}

TEST(Simulator, CalendarRunUntilBoundaryExact) {
  Simulator sim;
  sim.set_calendar_threshold(4);
  int at_horizon = 0;
  int past_horizon = 0;
  for (int i = 0; i < 32; ++i) sim.schedule_at(0.1 * i, [] {});
  sim.schedule_at(5.0, [&] { ++at_horizon; });
  sim.schedule_at(5.0 + 1e-9, [&] { ++past_horizon; });
  ASSERT_TRUE(sim.calendar_engaged());
  sim.run_until(5.0);
  EXPECT_EQ(at_horizon, 1);
  EXPECT_EQ(past_horizon, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(past_horizon, 1);
}

}  // namespace
}  // namespace slate
