// Unit tests for the network substrate: topology, presets, egress meter.
#include <gtest/gtest.h>

#include "net/egress_meter.h"
#include "net/gcp_topology.h"
#include "net/topology.h"
#include "util/rng.h"

namespace slate {
namespace {

TEST(Topology, AddAndName) {
  Topology topo;
  const ClusterId a = topo.add_cluster("alpha");
  const ClusterId b = topo.add_cluster("beta");
  EXPECT_EQ(topo.cluster_count(), 2u);
  EXPECT_EQ(topo.cluster_name(a), "alpha");
  EXPECT_EQ(topo.find_cluster("beta"), b);
  EXPECT_FALSE(topo.find_cluster("gamma").valid());
}

TEST(Topology, RttSetsBothDirections) {
  Topology topo(2);
  topo.set_rtt(ClusterId{0}, ClusterId{1}, 0.030);
  EXPECT_DOUBLE_EQ(topo.one_way_latency(ClusterId{0}, ClusterId{1}), 0.015);
  EXPECT_DOUBLE_EQ(topo.one_way_latency(ClusterId{1}, ClusterId{0}), 0.015);
  EXPECT_DOUBLE_EQ(topo.rtt(ClusterId{0}, ClusterId{1}), 0.030);
}

TEST(Topology, IntraClusterIsFree) {
  Topology topo(2);
  topo.set_rtt(ClusterId{0}, ClusterId{1}, 0.030);
  EXPECT_EQ(topo.one_way_latency(ClusterId{0}, ClusterId{0}), 0.0);
  EXPECT_EQ(topo.egress_price_per_gb(ClusterId{0}, ClusterId{0}), 0.0);
}

TEST(Topology, AsymmetricOneWay) {
  Topology topo(2);
  topo.set_one_way_latency(ClusterId{0}, ClusterId{1}, 0.010);
  topo.set_one_way_latency(ClusterId{1}, ClusterId{0}, 0.020);
  EXPECT_DOUBLE_EQ(topo.rtt(ClusterId{0}, ClusterId{1}), 0.030);
}

TEST(Topology, UniformEgressPriceSkipsDiagonal) {
  Topology topo(3);
  topo.set_uniform_egress_price(0.08);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double expected = i == j ? 0.0 : 0.08;
      EXPECT_DOUBLE_EQ(
          topo.egress_price_per_gb(ClusterId{i}, ClusterId{j}), expected);
    }
  }
}

TEST(Topology, NegativeInputsThrow) {
  Topology topo(2);
  EXPECT_THROW(topo.set_rtt(ClusterId{0}, ClusterId{1}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(topo.set_egress_price(ClusterId{0}, ClusterId{1}, -0.1),
               std::invalid_argument);
  EXPECT_THROW(topo.set_jitter_fraction(1.5), std::invalid_argument);
  EXPECT_THROW(topo.one_way_latency(ClusterId{0}, ClusterId{5}),
               std::out_of_range);
}

TEST(Topology, JitterBounds) {
  Topology topo(2);
  topo.set_rtt(ClusterId{0}, ClusterId{1}, 0.020);
  topo.set_jitter_fraction(0.2);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double l = topo.sample_latency(ClusterId{0}, ClusterId{1}, rng);
    EXPECT_GE(l, 0.010 * 0.8);
    EXPECT_LE(l, 0.010 * 1.2);
  }
  // Intra-cluster stays exactly zero even with jitter.
  EXPECT_EQ(topo.sample_latency(ClusterId{0}, ClusterId{0}, rng), 0.0);
}

TEST(Topology, NearestPrefersLowestLatency) {
  Topology topo(3);
  topo.set_rtt(ClusterId{0}, ClusterId{1}, 0.030);
  topo.set_rtt(ClusterId{0}, ClusterId{2}, 0.010);
  topo.set_rtt(ClusterId{1}, ClusterId{2}, 0.020);
  const std::vector<ClusterId> all{ClusterId{0}, ClusterId{1}, ClusterId{2}};
  // From 0, nearest non-self candidate is 2.
  EXPECT_EQ(topo.nearest(ClusterId{0}, all), ClusterId{2});
  // Restricting candidates changes the answer.
  EXPECT_EQ(topo.nearest(ClusterId{0}, {ClusterId{1}}), ClusterId{1});
  // Single self candidate returns self.
  EXPECT_EQ(topo.nearest(ClusterId{0}, {ClusterId{0}}), ClusterId{0});
}

TEST(GcpTopology, MatchesPaperMatrix) {
  const Topology topo = make_gcp_topology();
  ASSERT_EQ(topo.cluster_count(), 4u);
  const ClusterId orc = topo.find_cluster(kGcpRegionOR);
  const ClusterId ut = topo.find_cluster(kGcpRegionUT);
  const ClusterId iow = topo.find_cluster(kGcpRegionIOW);
  const ClusterId sc = topo.find_cluster(kGcpRegionSC);
  ASSERT_TRUE(orc.valid() && ut.valid() && iow.valid() && sc.valid());
  EXPECT_DOUBLE_EQ(topo.rtt(orc, ut), 0.030);
  EXPECT_DOUBLE_EQ(topo.rtt(ut, iow), 0.020);
  EXPECT_DOUBLE_EQ(topo.rtt(iow, sc), 0.035);
  EXPECT_DOUBLE_EQ(topo.rtt(orc, sc), 0.066);
  EXPECT_DOUBLE_EQ(topo.rtt(orc, iow), 0.037);
  EXPECT_DOUBLE_EQ(topo.egress_price_per_gb(orc, sc), 0.08);
}

TEST(GcpTopology, UtIsNearestToBothOverloaded) {
  // The premise of Fig. 5b: UT is the closest remote cluster to both OR and
  // IOW, which is why greedy offloading floods it.
  const Topology topo = make_gcp_topology();
  const ClusterId orc{0}, ut{1}, iow{2}, sc{3};
  const std::vector<ClusterId> remotes_or{ut, iow, sc};
  EXPECT_EQ(topo.nearest(orc, remotes_or), ut);
  const std::vector<ClusterId> remotes_iow{orc, ut, sc};
  EXPECT_EQ(topo.nearest(iow, remotes_iow), ut);
}

TEST(LineTopology, AccumulatesPerHop) {
  const Topology topo = make_line_topology(4, 0.010);
  EXPECT_DOUBLE_EQ(topo.rtt(ClusterId{0}, ClusterId{1}), 0.010);
  EXPECT_DOUBLE_EQ(topo.rtt(ClusterId{0}, ClusterId{3}), 0.030);
}

TEST(TwoClusterTopology, Preset) {
  const Topology topo = make_two_cluster_topology(0.050, 0.12);
  ASSERT_EQ(topo.cluster_count(), 2u);
  EXPECT_DOUBLE_EQ(topo.rtt(ClusterId{0}, ClusterId{1}), 0.050);
  EXPECT_DOUBLE_EQ(topo.egress_price_per_gb(ClusterId{0}, ClusterId{1}), 0.12);
  EXPECT_EQ(topo.cluster_name(ClusterId{0}), "west");
}

// --- EgressMeter -----------------------------------------------------------

TEST(EgressMeter, ChargesCrossClusterOnly) {
  Topology topo = make_two_cluster_topology(0.010, 0.08);
  EgressMeter meter(topo);
  meter.record(ClusterId{0}, ClusterId{0}, 1000);
  EXPECT_EQ(meter.total_egress_bytes(), 0u);
  EXPECT_EQ(meter.total_local_bytes(), 1000u);
  EXPECT_EQ(meter.total_cost_dollars(), 0.0);

  const std::uint64_t gb = 1024ull * 1024 * 1024;
  meter.record(ClusterId{0}, ClusterId{1}, gb);
  EXPECT_EQ(meter.total_egress_bytes(), gb);
  EXPECT_NEAR(meter.total_cost_dollars(), 0.08, 1e-12);
  EXPECT_EQ(meter.egress_bytes(ClusterId{0}, ClusterId{1}), gb);
}

TEST(EgressMeter, Reset) {
  Topology topo = make_two_cluster_topology(0.010, 0.08);
  EgressMeter meter(topo);
  meter.record(ClusterId{0}, ClusterId{1}, 12345);
  meter.reset();
  EXPECT_EQ(meter.total_egress_bytes(), 0u);
  EXPECT_EQ(meter.total_cost_dollars(), 0.0);
  EXPECT_EQ(meter.egress_bytes(ClusterId{0}, ClusterId{1}), 0u);
}

TEST(EgressMeter, AsymmetricPricing) {
  Topology topo(2);
  topo.set_egress_price(ClusterId{0}, ClusterId{1}, 0.10);
  topo.set_egress_price(ClusterId{1}, ClusterId{0}, 0.02);
  EgressMeter meter(topo);
  const std::uint64_t gb = 1024ull * 1024 * 1024;
  meter.record(ClusterId{0}, ClusterId{1}, gb);
  meter.record(ClusterId{1}, ClusterId{0}, gb);
  EXPECT_NEAR(meter.total_cost_dollars(), 0.12, 1e-12);
}

}  // namespace
}  // namespace slate
