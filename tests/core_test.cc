// Unit tests for SLATE core pieces: traffic classifier, latency model,
// model fitter, rule blending.
#include <gtest/gtest.h>

#include <cmath>

#include "app/builders.h"
#include "core/latency_model.h"
#include "core/model_fitter.h"
#include "core/routing_rules.h"
#include "core/traffic_classifier.h"

namespace slate {
namespace {

// --- TrafficClassifier ------------------------------------------------------

TEST(TrafficClassifier, RegisteredLookup) {
  TrafficClassifier classifier;
  RequestAttributes attrs;
  attrs.method = "GET";
  attrs.path = "/api/light";
  classifier.register_class(ServiceId{0}, attrs, ClassId{3});
  EXPECT_EQ(classifier.classify(ServiceId{0}, attrs), ClassId{3});
  EXPECT_EQ(classifier.lookup(ServiceId{0}, attrs), ClassId{3});
}

TEST(TrafficClassifier, KeyIncludesServiceMethodAndPath) {
  TrafficClassifier classifier;
  RequestAttributes get_light{.method = "GET", .path = "/light", .headers = {}};
  classifier.register_class(ServiceId{0}, get_light, ClassId{0});
  classifier.set_discovery_base(1);

  RequestAttributes post_light = get_light;
  post_light.method = "POST";
  RequestAttributes get_heavy = get_light;
  get_heavy.path = "/heavy";

  EXPECT_NE(classifier.classify(ServiceId{0}, post_light), ClassId{0});
  EXPECT_NE(classifier.classify(ServiceId{0}, get_heavy), ClassId{0});
  EXPECT_NE(classifier.classify(ServiceId{1}, get_light), ClassId{0});
}

TEST(TrafficClassifier, DiscoveryAllocatesStableIds) {
  TrafficClassifier classifier;
  classifier.set_discovery_base(10);
  RequestAttributes a{.method = "GET", .path = "/a", .headers = {}};
  RequestAttributes b{.method = "GET", .path = "/b", .headers = {}};
  const ClassId ka = classifier.classify(ServiceId{0}, a);
  const ClassId kb = classifier.classify(ServiceId{0}, b);
  EXPECT_EQ(ka, ClassId{10});
  EXPECT_EQ(kb, ClassId{11});
  // Repeat classification is stable.
  EXPECT_EQ(classifier.classify(ServiceId{0}, a), ka);
  EXPECT_EQ(classifier.discovered_count(), 2u);
}

TEST(TrafficClassifier, DiscoveryCapFallsToOverflowClass) {
  ClassifierOptions options;
  options.max_discovered_classes = 2;
  TrafficClassifier classifier(options);
  classifier.set_discovery_base(0);
  RequestAttributes attrs{.method = "GET", .path = "/0", .headers = {}};
  classifier.classify(ServiceId{0}, attrs);
  attrs.path = "/1";
  classifier.classify(ServiceId{0}, attrs);
  attrs.path = "/2";
  const ClassId overflow1 = classifier.classify(ServiceId{0}, attrs);
  attrs.path = "/3";
  const ClassId overflow2 = classifier.classify(ServiceId{0}, attrs);
  EXPECT_EQ(overflow1, overflow2);
  EXPECT_EQ(overflow1, classifier.overflow_class());
  EXPECT_EQ(classifier.discovered_count(), 2u);
}

TEST(TrafficClassifier, FromApplicationBindsPaperClasses) {
  const Application app = make_two_class_app();
  TrafficClassifier classifier = TrafficClassifier::from_application(app);
  const ClassId light = app.find_class("L");
  const ClassId heavy = app.find_class("H");
  EXPECT_EQ(classifier.classify(app.entry_service(light),
                                app.traffic_class(light).attributes),
            light);
  EXPECT_EQ(classifier.classify(app.entry_service(heavy),
                                app.traffic_class(heavy).attributes),
            heavy);
}

// --- LatencyModel -------------------------------------------------------------

TEST(LatencyModel, DefaultsUntilSet) {
  LatencyModel model(2, 2, 2);
  model.set_default_service_time(5e-3);
  EXPECT_FALSE(model.has(ServiceId{0}, ClassId{0}, ClusterId{0}));
  EXPECT_DOUBLE_EQ(model.service_time(ServiceId{0}, ClassId{0}, ClusterId{0}),
                   5e-3);
  model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{0}, 2e-3);
  EXPECT_TRUE(model.has(ServiceId{0}, ClassId{0}, ClusterId{0}));
  EXPECT_DOUBLE_EQ(model.service_time(ServiceId{0}, ClassId{0}, ClusterId{0}),
                   2e-3);
}

TEST(LatencyModel, UtilizationIsWorkOverServers) {
  LatencyModel model(1, 2, 1);
  model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{0}, 1e-3);
  model.set_service_time(ServiceId{0}, ClassId{1}, ClusterId{0}, 10e-3);
  const std::vector<double> rates{400.0, 40.0};  // 0.4 + 0.4 = 0.8 work
  EXPECT_NEAR(model.utilization(ServiceId{0}, ClusterId{0}, rates, 1), 0.8, 1e-12);
  EXPECT_NEAR(model.utilization(ServiceId{0}, ClusterId{0}, rates, 2), 0.4, 1e-12);
}

TEST(LatencyModel, WaitGrowsWithUtilizationAndClamps) {
  LatencyModel model(1, 1, 1);
  model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{0}, 1e-3);
  const std::vector<double> low{300.0};
  const std::vector<double> high{900.0};
  const double wait_low = model.mean_wait(ServiceId{0}, ClusterId{0}, low, 1);
  const double wait_high = model.mean_wait(ServiceId{0}, ClusterId{0}, high, 1);
  EXPECT_LT(wait_low, wait_high);
  // M/M/1: W = s * u/(1-u) = 1ms * 0.3/0.7.
  EXPECT_NEAR(wait_low, 1e-3 * 0.3 / 0.7, 1e-9);
  // Over capacity: clamped, finite.
  const std::vector<double> overload{2000.0};
  EXPECT_TRUE(std::isfinite(
      model.mean_wait(ServiceId{0}, ClusterId{0}, overload, 1)));
}

TEST(LatencyModel, PredictLatencyAddsServiceTime) {
  LatencyModel model(1, 1, 1);
  model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{0}, 2e-3);
  const std::vector<double> rates{100.0};
  const double latency =
      model.predict_latency(ServiceId{0}, ClassId{0}, ClusterId{0}, rates, 1);
  const double wait = model.mean_wait(ServiceId{0}, ClusterId{0}, rates, 1);
  EXPECT_NEAR(latency, 2e-3 + wait, 1e-12);
}

TEST(LatencyModel, FromApplicationUsesComputeMeans) {
  const Application app = make_two_class_app();
  const LatencyModel model = LatencyModel::from_application(app, 2);
  const ServiceId worker = app.find_service("worker");
  const ClassId light = app.find_class("L");
  const ClassId heavy = app.find_class("H");
  EXPECT_DOUBLE_EQ(model.service_time(worker, light, ClusterId{0}), 1e-3);
  EXPECT_DOUBLE_EQ(model.service_time(worker, heavy, ClusterId{1}), 10e-3);
}

TEST(LatencyModel, ScaleAll) {
  LatencyModel model(1, 1, 1);
  model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{0}, 2e-3);
  model.scale_all(3.0);
  EXPECT_DOUBLE_EQ(model.service_time(ServiceId{0}, ClassId{0}, ClusterId{0}),
                   6e-3);
  EXPECT_THROW(model.scale_all(0.0), std::invalid_argument);
}

// --- ModelFitter -----------------------------------------------------------------

LoadSample sample(double util, double latency, std::size_t count = 100) {
  LoadSample s;
  s.utilization = util;
  s.mean_latency = latency;
  s.count = count;
  s.rps = 100.0;
  return s;
}

TEST(ModelFitter, LowLoadSamplesGiveServiceTime) {
  ModelFitter fitter;
  const std::vector<LoadSample> samples{
      sample(0.1, 2.0e-3), sample(0.2, 2.2e-3), sample(0.15, 1.8e-3)};
  EXPECT_NEAR(fitter.estimate_service_time(samples), 2.0e-3, 1e-6);
}

TEST(ModelFitter, BusyOnlySamplesInvertMM1) {
  ModelFitter fitter;
  // T = s/(1-u): with s = 2ms at u = 0.5, T = 4ms.
  const std::vector<LoadSample> samples{
      sample(0.5, 4.0e-3), sample(0.6, 5.0e-3), sample(0.7, 6.7e-3)};
  EXPECT_NEAR(fitter.estimate_service_time(samples), 2.0e-3, 2e-4);
}

TEST(ModelFitter, InsufficientEvidenceIsNegative) {
  ModelFitter fitter;
  EXPECT_LT(fitter.estimate_service_time({}), 0.0);
  // Too few usable samples (min_samples = 3 by default).
  EXPECT_LT(fitter.estimate_service_time({sample(0.1, 1e-3)}), 0.0);
  // Samples below the per-sample count floor are unusable.
  const std::vector<LoadSample> tiny{
      sample(0.1, 1e-3, 2), sample(0.1, 1e-3, 2), sample(0.1, 1e-3, 2)};
  EXPECT_LT(fitter.estimate_service_time(tiny), 0.0);
}

TEST(ModelFitter, FitUpdatesModelWithSmoothing) {
  const Application app = make_linear_chain_app();
  Deployment deployment(app, 1);
  deployment.deploy_everywhere(1, 500.0);
  SampleStore store(app.service_count(), app.class_count(), 1);
  const ServiceId svc = app.find_service("svc-1");
  for (int i = 0; i < 5; ++i) {
    store.add(svc, ClassId{0}, ClusterId{0}, sample(0.1, 4.0e-3));
  }

  LatencyModel model(app.service_count(), app.class_count(), 1);
  model.set_service_time(svc, ClassId{0}, ClusterId{0}, 2.0e-3);

  FitterOptions options;
  options.smoothing = 0.5;
  ModelFitter fitter(options);
  const FitReport report = fitter.fit(store, deployment, model);
  EXPECT_GE(report.keys_fitted, 1u);
  // Smoothed halfway: 2ms -> 3ms.
  EXPECT_NEAR(model.service_time(svc, ClassId{0}, ClusterId{0}), 3.0e-3, 1e-6);
  EXPECT_GT(report.mean_relative_change, 0.0);
}

// --- Rule blending --------------------------------------------------------------

RouteWeights weights2(double w0, double w1) {
  RouteWeights w;
  w.clusters = {ClusterId{0}, ClusterId{1}};
  w.weights = {w0, w1};
  return w;
}

TEST(BlendRuleSets, NullCurrentCopiesTarget) {
  RoutingRuleSet target;
  target.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.5, 0.5));
  const auto blended = blend_rule_sets(nullptr, target, 0.3);
  const RouteWeights* rule = blended->find(ClassId{0}, 1, ClusterId{0});
  ASSERT_NE(rule, nullptr);
  EXPECT_DOUBLE_EQ(rule->weights[0], 0.5);
}

TEST(BlendRuleSets, PartialStep) {
  RoutingRuleSet current, target;
  current.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(1.0, 0.0));
  target.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.0, 1.0));
  const auto blended = blend_rule_sets(&current, target, 0.3);
  const RouteWeights* rule = blended->find(ClassId{0}, 1, ClusterId{0});
  ASSERT_NE(rule, nullptr);
  EXPECT_NEAR(rule->weight_for(ClusterId{0}), 0.7, 1e-12);
  EXPECT_NEAR(rule->weight_for(ClusterId{1}), 0.3, 1e-12);
}

TEST(BlendRuleSets, FullStepEqualsTarget) {
  RoutingRuleSet current, target;
  current.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(1.0, 0.0));
  target.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.2, 0.8));
  const auto blended = blend_rule_sets(&current, target, 1.0);
  EXPECT_DOUBLE_EQ(
      blended->find(ClassId{0}, 1, ClusterId{0})->weight_for(ClusterId{1}), 0.8);
}

TEST(BlendRuleSets, KeysOnlyInTargetCopied) {
  RoutingRuleSet current, target;
  current.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(1.0, 0.0));
  target.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.0, 1.0));
  target.set_rule(ClassId{1}, 2, ClusterId{1}, weights2(0.4, 0.6));
  const auto blended = blend_rule_sets(&current, target, 0.5);
  EXPECT_EQ(blended->size(), 2u);
  EXPECT_DOUBLE_EQ(
      blended->find(ClassId{1}, 2, ClusterId{1})->weight_for(ClusterId{1}), 0.6);
}

TEST(RuleSetDistance, ZeroForIdentical) {
  RoutingRuleSet a;
  a.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.5, 0.5));
  EXPECT_DOUBLE_EQ(rule_set_distance(a, a), 0.0);
}

TEST(RuleSetDistance, MaxForDisjointWeights) {
  RoutingRuleSet a, b;
  a.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(1.0, 0.0));
  b.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.0, 1.0));
  EXPECT_DOUBLE_EQ(rule_set_distance(a, b), 2.0);
}

TEST(RuleSetDistance, SymmetricUnderMissingKeys) {
  RoutingRuleSet a, b;
  a.set_rule(ClassId{0}, 1, ClusterId{0}, weights2(0.5, 0.5));
  EXPECT_GT(rule_set_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(rule_set_distance(a, b), rule_set_distance(b, a));
}

}  // namespace
}  // namespace slate
