// Planet-scale acceptance: on a 30-cluster / 200-service / 12-class
// synthesized world, the solve fits the control period — warm starts beat
// cold solves by the pinned factor at steady state, the rip-up heuristic
// stays within its optimality-gap bound, and the solver guard demonstrably
// falls back to the rip-up arm (and recovers) when the exact solve blows an
// enforced wall budget.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "core/fast_optimizer.h"
#include "core/latency_model.h"
#include "core/optimizer.h"
#include "core/plan_eval.h"
#include "core/ripup_optimizer.h"
#include "guard/solver_guard.h"
#include "topogen/topogen.h"

namespace slate {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One shared world: generation is cheap but the exact solves are not, and
// every test here wants the same instance.
class SolverScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TopoGenOptions options;
    options.seed = 17;
    options.clusters = 30;
    options.services = 200;
    options.classes = 12;
    options.total_rps = 3000.0;
    scenario_ = new Scenario(make_synth_scenario(options));
    model_ = new LatencyModel(LatencyModel::from_application(
        *scenario_->app, scenario_->topology->cluster_count()));
    demand_ = new FlatMatrix<double>(scenario_->app->class_count(),
                                     scenario_->topology->cluster_count(),
                                     0.0);
    for (const auto& stream : scenario_->demand.streams()) {
      (*demand_)(stream.cls.index(), stream.cluster.index()) +=
          scenario_->demand.rate_at(stream.cls, stream.cluster, 0.0);
    }
  }
  static void TearDownTestSuite() {
    delete demand_;
    delete model_;
    delete scenario_;
    demand_ = nullptr;
    model_ = nullptr;
    scenario_ = nullptr;
  }

  static Scenario* scenario_;
  static LatencyModel* model_;
  static FlatMatrix<double>* demand_;
};

Scenario* SolverScaleTest::scenario_ = nullptr;
LatencyModel* SolverScaleTest::model_ = nullptr;
FlatMatrix<double>* SolverScaleTest::demand_ = nullptr;

TEST_F(SolverScaleTest, WarmStartAtLeastFiveTimesFasterAtSteadyState) {
  RouteOptimizer optimizer(*scenario_->app, *scenario_->deployment,
                           *scenario_->topology);
  OptimizerCache cache;

  const double t0 = now_seconds();
  const OptimizerResult cold =
      optimizer.optimize(*model_, *demand_, nullptr, &cache);
  const double cold_seconds = now_seconds() - t0;
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.warm_started);

  const double t1 = now_seconds();
  const OptimizerResult warm =
      optimizer.optimize(*model_, *demand_, nullptr, &cache);
  const double warm_seconds = now_seconds() - t1;
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.warm_started);

  // The pinned acceptance bound is 5x; the steady-state path is a memo hit
  // and lands orders of magnitude beyond it, so timing noise has enormous
  // headroom here.
  EXPECT_LE(warm_seconds * 5.0, cold_seconds)
      << "cold " << cold_seconds * 1e3 << " ms vs warm " << warm_seconds * 1e3
      << " ms";
  EXPECT_EQ(warm.objective, cold.objective);
}

TEST_F(SolverScaleTest, RipupWithinTenPercentOfExact) {
  RouteOptimizer exact(*scenario_->app, *scenario_->deployment,
                       *scenario_->topology);
  RipupRouteOptimizer ripup(*scenario_->app, *scenario_->deployment,
                            *scenario_->topology);
  const OptimizerResult exact_result = exact.optimize(*model_, *demand_);
  const OptimizerResult ripup_result = ripup.optimize(*model_, *demand_);
  ASSERT_TRUE(exact_result.ok());
  // kIterationLimit means negotiation had not fully settled at the round
  // cap; the best-seen plan is still complete and is what we score.
  ASSERT_TRUE(ripup_result.status == LpStatus::kOptimal ||
              ripup_result.status == LpStatus::kIterationLimit);
  ASSERT_NE(ripup_result.rules, nullptr);

  const double exact_cost = evaluate_plan_cost(
      *scenario_->app, *scenario_->deployment, *scenario_->topology, *model_,
      *demand_, *exact_result.rules);
  const double ripup_cost = evaluate_plan_cost(
      *scenario_->app, *scenario_->deployment, *scenario_->topology, *model_,
      *demand_, *ripup_result.rules);
  ASSERT_GT(exact_cost, 0.0);
  EXPECT_LE(ripup_cost, exact_cost * 1.10)
      << "gap " << (ripup_cost / exact_cost - 1.0) * 100.0 << "%";
}

TEST_F(SolverScaleTest, GuardFallsBackToRipupOnBudgetOverrunAndRecovers) {
  RouteOptimizer exact(*scenario_->app, *scenario_->deployment,
                       *scenario_->topology);
  // A deliberately slow descent arm: with zero tolerance and a microscopic
  // step it grinds through every sweep, so the fast rung also overruns the
  // budget and the ladder must reach rip-up.
  FastOptimizerOptions slow;
  slow.max_sweeps = 100000;
  slow.step = 1e-4;
  slow.relative_tolerance = 0.0;
  FastRouteOptimizer slow_fast(*scenario_->app, *scenario_->deployment,
                               *scenario_->topology, slow);
  RipupRouteOptimizer ripup(*scenario_->app, *scenario_->deployment,
                            *scenario_->topology);

  // Budget calibration: rip-up finishes in milliseconds on this world while
  // the exact LP and the crippled descent arm take hundreds; the geometric
  // mean of the two measured times sits between them with a wide
  // multiplicative margin on both sides, so load-dependent timing noise
  // cannot flip which arms fit the budget.
  const double t0 = now_seconds();
  ASSERT_NE(ripup.optimize(*model_, *demand_).rules, nullptr);
  const double ripup_seconds = now_seconds() - t0;
  const double t1 = now_seconds();
  ASSERT_TRUE(exact.optimize(*model_, *demand_).ok());
  const double exact_seconds = now_seconds() - t1;
  ASSERT_LT(ripup_seconds * 4.0, exact_seconds)
      << "world too easy to demonstrate a budget overrun: ripup "
      << ripup_seconds * 1e3 << " ms vs exact " << exact_seconds * 1e3
      << " ms";

  SolverGuardOptions options;
  options.enabled = true;
  options.enforce_budget = true;
  options.wall_budget = std::sqrt(ripup_seconds * exact_seconds);
  SolverGuard guard(*scenario_->app, *scenario_->deployment,
                    *scenario_->topology, options);
  OptimizerCache cache;

  const SolverGuard::Outcome degraded =
      guard.solve(exact, slow_fast, ripup, false, *model_, *demand_, nullptr,
                  &cache, false, false);
  EXPECT_EQ(degraded.rung, SolverRung::kRipup)
      << "settled on " << to_string(degraded.rung) << " (budget "
      << options.wall_budget * 1e3 << " ms)";
  ASSERT_TRUE(degraded.result.ok());
  EXPECT_NE(degraded.result.rules, nullptr);
  EXPECT_EQ(guard.rung_count(SolverRung::kRipup), 1u);

  // Recovery: the over-budget primary solve still primed the cache, so the
  // next period's identical demand memo-hits in microseconds and the ladder
  // settles back on the primary rung.
  const SolverGuard::Outcome recovered =
      guard.solve(exact, slow_fast, ripup, false, *model_, *demand_, nullptr,
                  &cache, false, true);
  EXPECT_EQ(recovered.rung, SolverRung::kPrimary)
      << "settled on " << to_string(recovered.rung);
  ASSERT_TRUE(recovered.result.ok());
  EXPECT_TRUE(recovered.result.warm_started);
  EXPECT_EQ(guard.rung_count(SolverRung::kPrimary), 1u);
}

TEST_F(SolverScaleTest, DecompositionFindsIndependentGroups) {
  // The default shared fraction still leaves some classes on disjoint
  // private blocks; the partition must find more than one group (or the
  // whole decomposition is a no-op at scale).
  RouteOptimizer optimizer(*scenario_->app, *scenario_->deployment,
                           *scenario_->topology);
  const OptimizerResult result = optimizer.optimize(*model_, *demand_);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.solve_groups, 1u);
  EXPECT_LE(result.solve_groups, scenario_->app->class_count());
}

}  // namespace
}  // namespace slate
