// Randomized end-to-end property tests.
//
// Generates random worlds — topology size/latencies, call-tree shapes,
// partial replication, demand mixes — runs each policy briefly, and checks
// the invariants that must hold regardless of configuration:
//   * the run completes (no crash, no stuck simulation);
//   * requests are conserved (completed <= generated; flows consistent);
//   * routing never targets an undeployed station (the engine throws);
//   * measured quantiles are ordered and finite;
//   * egress bytes appear iff some call crossed clusters;
//   * identical seeds reproduce identical results.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "guard/report_validator.h"
#include "net/gcp_topology.h"
#include "runtime/parallel.h"
#include "runtime/scenario_loader.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"
#include "util/strfmt.h"
#include "workload/generators.h"

namespace slate {
namespace {

// Random application: tree of up to `max_services` services, 1-3 classes
// with varying compute and sizes.
Application random_app(Rng& rng) {
  Application app;
  const std::size_t services = 2 + rng.uniform_u64(5);
  for (std::size_t s = 0; s < services; ++s) {
    app.add_service(strfmt("svc-%zu", s));
  }
  const std::size_t classes = 1 + rng.uniform_u64(3);
  for (std::size_t k = 0; k < classes; ++k) {
    TrafficClassSpec spec;
    spec.name = strfmt("class-%zu", k);
    spec.attributes.path = strfmt("/api/%zu", k);
    // Random tree: each node's parent is a previously created node.
    const std::size_t nodes = 1 + rng.uniform_u64(services);
    spec.graph.set_root(ServiceId{0}, rng.uniform(0.1e-3, 3e-3),
                        64 + rng.uniform_u64(4096),
                        64 + rng.uniform_u64(16384));
    for (std::size_t n = 1; n < nodes; ++n) {
      const std::size_t parent = rng.uniform_u64(n);
      const ServiceId service{1 + rng.uniform_u64(services - 1)};
      const std::size_t node = spec.graph.add_call(
          parent, service, rng.uniform(0.1e-3, 4e-3),
          64 + rng.uniform_u64(4096), 64 + rng.uniform_u64(16384),
          rng.bernoulli(0.2) ? 0.5 : 1.0);
      if (rng.bernoulli(0.3)) {
        spec.graph.set_invocation_mode(node, InvocationMode::kParallel);
      }
    }
    app.add_class(std::move(spec));
  }
  app.validate();
  return app;
}

Scenario random_scenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario scenario;
  scenario.name = strfmt("fuzz-%llu", static_cast<unsigned long long>(seed));
  scenario.app = std::make_unique<Application>(random_app(rng));

  const std::size_t clusters = 2 + rng.uniform_u64(3);
  scenario.topology = std::make_unique<Topology>();
  for (std::size_t c = 0; c < clusters; ++c) {
    scenario.topology->add_cluster(strfmt("c%zu", c));
  }
  for (std::size_t a = 0; a < clusters; ++a) {
    for (std::size_t b = a + 1; b < clusters; ++b) {
      scenario.topology->set_rtt(ClusterId{a}, ClusterId{b},
                                 rng.uniform(2e-3, 80e-3));
    }
  }
  scenario.topology->set_uniform_egress_price(rng.uniform(0.01, 0.15));
  if (rng.bernoulli(0.4)) scenario.topology->set_jitter_fraction(0.1);

  scenario.deployment = std::make_unique<Deployment>(*scenario.app, clusters);
  for (ServiceId s : scenario.app->all_services()) {
    // Deploy in a random non-empty subset of clusters; the entry service of
    // every class must exist somewhere (guaranteed: non-empty subset).
    bool any = false;
    for (std::size_t c = 0; c < clusters; ++c) {
      if (rng.bernoulli(0.7)) {
        scenario.deployment->deploy(s, ClusterId{c}, 1 + rng.uniform_u64(3),
                                    rng.uniform(100.0, 900.0));
        any = true;
      }
    }
    if (!any) {
      scenario.deployment->deploy(s, ClusterId{rng.uniform_u64(clusters)},
                                  1 + rng.uniform_u64(3),
                                  rng.uniform(100.0, 900.0));
    }
  }
  scenario.deployment->validate();

  for (ClassId k : scenario.app->all_classes()) {
    for (std::size_t c = 0; c < clusters; ++c) {
      if (rng.bernoulli(0.6)) {
        scenario.demand.set_rate(k, ClusterId{c}, rng.uniform(10.0, 300.0));
      }
    }
  }
  return scenario;
}

// Random fault schedule over the world: 1-4 faults of any kind, windows
// landing anywhere in (or straddling) a `duration`-second run.
void add_random_faults(FaultPlan& plan, Rng& rng, std::size_t clusters,
                       std::size_t services, double duration) {
  const std::size_t n = 1 + rng.uniform_u64(4);
  for (std::size_t i = 0; i < n; ++i) {
    const double start = rng.uniform(0.0, duration);
    const double len = rng.uniform(0.5, duration / 2.0);
    const ClusterId a{rng.uniform_u64(clusters)};
    switch (rng.uniform_u64(5)) {
      case 0:
        plan.cluster_outage(a, start, len);
        break;
      case 1:
        plan.telemetry_blackout(a, start, len);
        break;
      case 2:
        plan.service_slowdown(ServiceId{rng.uniform_u64(services)},
                              rng.bernoulli(0.5) ? a : ClusterId{}, start, len,
                              rng.uniform(1.5, 20.0));
        break;
      default: {
        ClusterId b{(a.index() + 1 + rng.uniform_u64(clusters - 1)) % clusters};
        if (rng.bernoulli(0.3)) {
          plan.link_partition(a, b, start, len);
        } else {
          plan.link_degradation(a, b, start, len, rng.uniform(1.5, 10.0),
                                rng.uniform(0.0, 0.05));
        }
        break;
      }
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, AllPoliciesSatisfyInvariants) {
  const auto seed = static_cast<std::uint64_t>(7000 + GetParam());
  const Scenario scenario = random_scenario(seed);

  for (PolicyKind policy :
       {PolicyKind::kLocalityFailover, PolicyKind::kRoundRobin,
        PolicyKind::kWaterfall, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    RunConfig config;
    config.policy = policy;
    config.duration = 12.0;
    config.warmup = 4.0;
    config.seed = seed;
    const ExperimentResult r = run_experiment(scenario, config);

    // Conservation & basic sanity.
    EXPECT_LE(r.completed, r.generated);
    if (scenario.demand.total_rate_at(0.0) > 0.0) {
      EXPECT_GT(r.generated, 0u);
    }
    if (r.completed > 0) {
      EXPECT_GT(r.mean_latency(), 0.0);
      EXPECT_TRUE(std::isfinite(r.p99()));
      EXPECT_LE(r.p50(), r.p95() + 1e-12);
      EXPECT_LE(r.p95(), r.p99() + 1e-12);
    }

    // Flows only between valid clusters; egress consistent with flows.
    std::uint64_t cross_calls = 0;
    for (const auto& per_class : r.flows) {
      for (const auto& m : per_class) {
        for (std::size_t i = 0; i < m.rows(); ++i) {
          for (std::size_t j = 0; j < m.cols(); ++j) {
            if (i != j) cross_calls += m(i, j);
          }
        }
      }
    }
    if (cross_calls == 0) {
      EXPECT_EQ(r.egress_bytes, 0u);
    } else {
      EXPECT_GT(r.egress_bytes, 0u);
    }

    // Station utilization entries are -1 (not deployed) or within [0, ~1.5]
    // (transient shrink overshoot allowed).
    for (double u : r.station_utilization) {
      EXPECT_TRUE(u == -1.0 || (u >= 0.0 && u < 2.0)) << u;
    }
  }
}

TEST_P(FuzzTest, DeterministicAcrossRuns) {
  const auto seed = static_cast<std::uint64_t>(9000 + GetParam());
  const Scenario scenario = random_scenario(seed);
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 8.0;
  config.warmup = 2.0;
  config.seed = seed;
  const ExperimentResult a = run_experiment(scenario, config);
  const ExperimentResult b = run_experiment(scenario, config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.egress_bytes, b.egress_bytes);
  EXPECT_DOUBLE_EQ(a.mean_latency(), b.mean_latency());
}

TEST_P(FuzzTest, FaultedRunsSatisfyInvariantsAndDeterminism) {
  const auto seed = static_cast<std::uint64_t>(11000 + GetParam());
  Scenario scenario = random_scenario(seed);
  Rng rng(seed ^ 0xfau);
  add_random_faults(scenario.faults, rng, scenario.topology->cluster_count(),
                    scenario.app->service_count(), 12.0);

  for (PolicyKind policy : {PolicyKind::kLocalityFailover, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    RunConfig config;
    config.policy = policy;
    config.duration = 12.0;
    config.warmup = 4.0;
    config.seed = seed;
    config.timeseries_bucket = 1.0;
    // Half the runs get the full timeout/retry machinery.
    config.failure.enabled = rng.bernoulli(0.5);

    const ExperimentResult a = run_experiment(scenario, config);
    // Conservation: every measured finish is a success or an error, and the
    // whole-run series can't exceed the arrivals.
    EXPECT_LE(a.completed, a.generated);
    std::uint64_t series_total = 0;
    for (std::size_t i = 0; i < a.completed_series.size(); ++i) {
      series_total += a.completed_series[i] + a.failed_series[i];
    }
    EXPECT_LE(series_total, a.generated);
    if (a.completed > 0) {
      EXPECT_TRUE(std::isfinite(a.p99()));
      EXPECT_LE(a.p50(), a.p99() + 1e-12);
    }

    const ExperimentResult b = run_experiment(scenario, config);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.call_retries, b.call_retries);
    EXPECT_EQ(a.fault_transitions, b.fault_transitions);
  }
}

// Random fault directive lines through the text loader: every line either
// parses into a plan entry or is rejected with a line-numbered error —
// never a crash, never a silently half-applied fault.
TEST_P(FuzzTest, FaultDirectivesParseOrFailCleanly) {
  const auto seed = static_cast<std::uint64_t>(13000 + GetParam());
  Rng rng(seed);
  const std::string base =
      "cluster west\ncluster east\nrtt west east 20ms\n"
      "service s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=200\ndemand k west 50\n";

  auto token = [&](std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, rng.uniform_u64(options.size()));
    return std::string(*it);
  };
  for (int line = 0; line < 24; ++line) {
    std::string directive =
        "fault " + token({"outage", "blackout", "slowdown", "link", "rain"});
    const std::size_t extras = rng.uniform_u64(5);
    for (std::size_t i = 0; i < extras; ++i) {
      directive += " " + token({"west", "east", "s", "*", "@1s", "@-3s", "2s",
                                "0s", "factor=2", "factor=x", "extra=5ms",
                                "partition", "bogus"});
    }
    const std::string text = base + directive + "\n";
    try {
      const Scenario s = load_scenario_from_string(text);
      EXPECT_EQ(s.faults.size(), 1u) << directive;
      s.faults.validate(s.topology->cluster_count(), s.app->service_count());
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 9"), std::string::npos)
          << directive << " -> " << e.what();
    }
  }
}

// Random but valid overload-control configuration.
OverloadPolicy random_overload(Rng& rng, std::size_t classes) {
  OverloadPolicy p;
  if (rng.bernoulli(0.7)) {
    p.queue.max_queue = 1 + rng.uniform_u64(128);
    p.queue.priority_shedding = rng.bernoulli(0.5);
  }
  if (rng.bernoulli(0.4)) {
    p.queue.codel_target = rng.uniform(0.005, 0.05);
    p.queue.codel_interval = rng.uniform(0.02, 0.2);
  }
  if (rng.bernoulli(0.7)) {
    p.deadline.enabled = true;
    p.deadline.default_deadline = rng.uniform(0.05, 1.0);
    p.deadline.propagate = rng.bernoulli(0.7);
    for (std::size_t k = 0; k < classes; ++k) {
      if (rng.bernoulli(0.3)) {
        p.deadline.per_class.resize(classes, 0.0);
        p.deadline.per_class[k] = rng.uniform(0.05, 2.0);
      }
    }
  }
  for (std::size_t k = 0; k < classes; ++k) {
    if (rng.bernoulli(0.3)) {
      p.queue.class_priority.resize(classes, 0);
      p.queue.class_priority[k] = static_cast<int>(rng.uniform_u64(10)) - 3;
    }
  }
  if (rng.bernoulli(0.5)) {
    p.breaker.enabled = true;
    p.breaker.window = rng.uniform(1.0, 8.0);
    p.breaker.min_volume = 5 + rng.uniform_u64(40);
    p.breaker.failure_ratio = rng.uniform(0.2, 1.0);
    p.breaker.ejection_base = rng.uniform(1.0, 5.0);
    p.breaker.max_ejection = 30.0;
    p.breaker.half_open_probes = 1 + rng.uniform_u64(5);
  }
  return p;
}

// Overload control interleaved with random faults: the run must neither
// crash nor leak jobs. Conservation — every job a station admitted is
// served, cancelled, evicted, or still in flight at run end; everything
// else was shed at the door — plus seed determinism with the whole
// subsystem active.
TEST_P(FuzzTest, OverloadRunsSatisfyConservationAndDeterminism) {
  const auto seed = static_cast<std::uint64_t>(15000 + GetParam());
  Scenario scenario = random_scenario(seed);
  Rng rng(seed ^ 0x0eu);
  if (rng.bernoulli(0.6)) {
    add_random_faults(scenario.faults, rng, scenario.topology->cluster_count(),
                      scenario.app->service_count(), 12.0);
  }

  for (PolicyKind policy : {PolicyKind::kLocalityFailover, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    RunConfig config;
    config.policy = policy;
    config.duration = 12.0;
    config.warmup = 4.0;
    config.seed = seed;
    config.failure.enabled = rng.bernoulli(0.7);
    config.overload = random_overload(rng, scenario.app->class_count());

    const ExperimentResult a = run_experiment(scenario, config);
    EXPECT_EQ(a.jobs_submitted, a.jobs_served + a.jobs_cancelled +
                                    a.jobs_evicted + a.jobs_in_flight_at_end);
    EXPECT_EQ(a.jobs_evicted, a.shed_evictions);
    EXPECT_GE(a.jobs_shed, a.shed_queue_full + a.shed_queue_delay);
    EXPECT_LE(a.completed, a.generated);
    if (a.completed > 0) {
      EXPECT_TRUE(std::isfinite(a.p99()));
    }
    // Wasted server time requires deadlines carried without propagation.
    if (!a.generated || !config.overload.deadline.enabled ||
        config.overload.deadline.propagate) {
      EXPECT_EQ(a.wasted_server_seconds, 0.0);
    }

    const ExperimentResult b = run_experiment(scenario, config);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.total_shed(), b.total_shed());
    EXPECT_EQ(a.deadline_cancellations, b.deadline_cancellations);
    EXPECT_EQ(a.breaker_ejections, b.breaker_ejections);
    EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  }
}

// Random overload directive lines through the text loader: like the fault
// fuzz — parse into policy state or fail with a line-numbered error.
TEST_P(FuzzTest, OverloadDirectivesParseOrFailCleanly) {
  const auto seed = static_cast<std::uint64_t>(17000 + GetParam());
  Rng rng(seed);
  const std::string base =
      "cluster west\ncluster east\nrtt west east 20ms\n"
      "service s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=200\ndemand k west 50\n";

  auto token = [&](std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, rng.uniform_u64(options.size()));
    return std::string(*it);
  };
  for (int line = 0; line < 24; ++line) {
    std::string directive =
        "overload " + token({"queue", "deadline", "priority", "breaker",
                             "meteor"});
    const std::size_t extras = rng.uniform_u64(5);
    for (std::size_t i = 0; i < extras; ++i) {
      directive += " " + token({"k", "s", "500ms", "-1s", "0s", "limit=32",
                                "limit=-4", "limit=x", "codel_target=10ms",
                                "priority_shedding=on", "propagate=off",
                                "propagate=41", "window=5s", "ratio=0.5",
                                "ratio=7", "min_volume=10", "probes=0",
                                "eject=5s", "7", "1.5", "bogus=1"});
    }
    const std::string text = base + directive + "\n";
    try {
      const Scenario s = load_scenario_from_string(text);
      // Whatever parsed must be a coherent policy for this world.
      s.overload.validate(s.app->class_count());
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 9"), std::string::npos)
          << directive << " -> " << e.what();
    }
  }
}

// Random but valid front-door admission configuration.
AdmissionPolicy random_admission(Rng& rng, std::size_t classes) {
  AdmissionPolicy p;
  p.enabled = true;
  p.default_rate = rng.uniform(20.0, 600.0);
  p.burst = rng.uniform(0.05, 2.0);
  p.default_slo = rng.uniform(0.05, 2.0);
  p.adapt = rng.bernoulli(0.8);
  p.target_attainment = rng.uniform(0.5, 1.0);
  p.gain = rng.uniform(0.05, 0.9);
  p.headroom = 1.0 + rng.uniform(0.0, 0.5);
  p.fair_floor = rng.uniform(0.0, 0.5);
  p.evidence = rng.uniform(5.0, 200.0);
  p.min_rate = rng.uniform(0.5, 5.0);
  p.max_rate = rng.uniform(1e3, 1e6);
  for (std::size_t k = 0; k < classes; ++k) {
    if (rng.bernoulli(0.3)) {
      p.class_rate.resize(classes, 0.0);
      p.class_rate[k] = rng.uniform(10.0, 400.0);
    }
    if (rng.bernoulli(0.3)) {
      p.class_slo.resize(classes, 0.0);
      p.class_slo[k] = rng.uniform(0.05, 2.0);
    }
  }
  return p;
}

// Front-door admission interleaved with random faults and random mid-tree
// overload control: the gate's conservation law (every generated request
// is either admitted or rejected at the door, per class and in total)
// must hold under any interleaving, and the whole stack stays
// bit-deterministic for a fixed seed.
TEST_P(FuzzTest, AdmissionRunsSatisfyConservationAndDeterminism) {
  const auto seed = static_cast<std::uint64_t>(27000 + GetParam());
  Scenario scenario = random_scenario(seed);
  Rng rng(seed ^ 0xadu);
  if (rng.bernoulli(0.5)) {
    add_random_faults(scenario.faults, rng, scenario.topology->cluster_count(),
                      scenario.app->service_count(), 12.0);
  }

  for (PolicyKind policy : {PolicyKind::kLocalityFailover, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    RunConfig config;
    config.policy = policy;
    config.duration = 12.0;
    config.warmup = 4.0;
    config.seed = seed;
    config.failure.enabled = rng.bernoulli(0.5);
    config.admission = random_admission(rng, scenario.app->class_count());
    if (rng.bernoulli(0.5)) {
      config.overload = random_overload(rng, scenario.app->class_count());
    }

    const ExperimentResult a = run_experiment(scenario, config);
    // Door conservation: every arrival is admitted or rejected, per class
    // and in total, and only admitted requests reach the engine.
    EXPECT_EQ(a.generated, a.admission_admitted + a.admission_rejected);
    std::uint64_t admitted_by_class = 0;
    std::uint64_t rejected_by_class = 0;
    for (const std::uint64_t v : a.admission_admitted_by_class) {
      admitted_by_class += v;
    }
    for (const std::uint64_t v : a.admission_rejected_by_class) {
      rejected_by_class += v;
    }
    EXPECT_EQ(admitted_by_class, a.admission_admitted);
    EXPECT_EQ(rejected_by_class, a.admission_rejected);
    EXPECT_LE(a.completed, a.admission_admitted);
    // Mid-tree job conservation is unaffected by the door.
    EXPECT_EQ(a.jobs_submitted, a.jobs_served + a.jobs_cancelled +
                                    a.jobs_evicted + a.jobs_in_flight_at_end);
    if (!config.admission.adapt) {
      EXPECT_EQ(a.admission_rate_raises, 0u);
      EXPECT_EQ(a.admission_rate_cuts, 0u);
    }
    if (a.completed > 0) {
      EXPECT_TRUE(std::isfinite(a.p99()));
    }

    const ExperimentResult b = run_experiment(scenario, config);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.admission_admitted, b.admission_admitted);
    EXPECT_EQ(a.admission_rejected, b.admission_rejected);
    EXPECT_EQ(a.admission_adapt_rounds, b.admission_adapt_rounds);
    EXPECT_EQ(a.admission_rate_raises, b.admission_rate_raises);
    EXPECT_EQ(a.admission_rate_cuts, b.admission_rate_cuts);
    EXPECT_EQ(a.admission_floor_raises, b.admission_floor_raises);
  }
}

// Random admission directive lines through the text loader: parse into a
// policy that validates, or fail with a line-numbered error.
TEST_P(FuzzTest, AdmissionDirectivesParseOrFailCleanly) {
  const auto seed = static_cast<std::uint64_t>(29000 + GetParam());
  Rng rng(seed);
  const std::string base =
      "cluster west\ncluster east\nrtt west east 20ms\n"
      "service s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=200\ndemand k west 50\n";

  auto token = [&](std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, rng.uniform_u64(options.size()));
    return std::string(*it);
  };
  for (int line = 0; line < 24; ++line) {
    std::string directive = "admission";
    if (rng.bernoulli(0.3)) {
      directive += " class " + token({"k", "nope"});
      const std::size_t extras = rng.uniform_u64(3);
      for (std::size_t i = 0; i < extras; ++i) {
        directive += " " + token({"rate=120", "rate=-5", "rate=x",
                                  "slo=250ms", "slo=0s", "burst=1s",
                                  "bogus=1"});
      }
    } else {
      const std::size_t extras = rng.uniform_u64(6);
      directive += " " + token({"rate=450", "rate=0", "rate=x"});
      for (std::size_t i = 0; i < extras; ++i) {
        directive +=
            " " + token({"burst=200ms", "burst=0s", "slo=500ms",
                         "attainment=0.9", "attainment=2", "gain=0.5",
                         "gain=1", "headroom=1.25", "headroom=0.5",
                         "fair_floor=0.2", "fair_floor=1.5", "evidence=50",
                         "evidence=0", "min_rate=1", "max_rate=1e6",
                         "max_rate=0.5", "adapt=on", "adapt=off",
                         "adapt=maybe", "bogus=1", "7"});
      }
    }
    const std::string text = base + directive + "\n";
    try {
      const Scenario s = load_scenario_from_string(text);
      // Whatever parsed must be a coherent policy for this world.
      s.admission.validate(s.app->class_count());
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 9"), std::string::npos)
          << directive << " -> " << e.what();
    } catch (const std::invalid_argument& e) {
      ADD_FAILURE() << "parsed but invalid: " << directive << " -> "
                    << e.what();
    }
  }
}

// --- Corrupted-report fuzzing (control-plane hardening) ---------------------

// Poisons random fields of a report the way a byzantine reporter would:
// NaN/Inf/negative values, implausible magnitudes, permuted or out-of-range
// class/service indices, wrong-sized per-class vectors.
void poison_report(ClusterReport& report, Rng& rng) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto poison = [&](double& v) {
    switch (rng.uniform_u64(6)) {
      case 0: v = kNaN; break;
      case 1: v = kInf; break;
      case 2: v = -std::abs(v) - 1.0; break;
      case 3: v *= 1e9; break;
      case 4: v = 0.0; break;
      default: v *= rng.uniform(0.0, 100.0); break;
    }
  };
  for (double& v : report.ingress_rps) {
    if (rng.bernoulli(0.5)) poison(v);
  }
  for (auto& m : report.request_metrics) {
    if (rng.bernoulli(0.3)) poison(m.mean_latency);
    if (rng.bernoulli(0.3)) poison(m.completion_rps);
    if (rng.bernoulli(0.3)) poison(m.mean_service_time);
    if (rng.bernoulli(0.2)) m.cls = ClassId{rng.uniform_u64(64)};
    if (rng.bernoulli(0.2)) m.service = ServiceId{rng.uniform_u64(64)};
  }
  for (auto& sm : report.station_metrics) {
    if (rng.bernoulli(0.3)) poison(sm.utilization);
    if (rng.bernoulli(0.2)) sm.service = ServiceId{rng.uniform_u64(64)};
  }
  for (auto& e : report.e2e) {
    if (rng.bernoulli(0.3)) poison(e.mean_latency);
    if (rng.bernoulli(0.3)) poison(e.p99_latency);
  }
  if (rng.bernoulli(0.2)) {
    report.ingress_rps.resize(rng.uniform_u64(8), 50.0);
  }
  if (rng.bernoulli(0.1)) report.cluster = ClusterId{rng.uniform_u64(64)};
}

// The validator must block every poisoned field: after admit(), nothing
// non-finite, negative, implausible, or out-of-range survives in the
// report, regardless of the corruption drawn.
TEST_P(FuzzTest, ValidatorBlocksEveryPoisonedField) {
  const auto seed = static_cast<std::uint64_t>(19000 + GetParam());
  Rng rng(seed);
  const std::size_t services = 1 + rng.uniform_u64(5);
  const std::size_t classes = 1 + rng.uniform_u64(3);
  const std::size_t clusters = 2 + rng.uniform_u64(3);
  AdmissionOptions options;
  options.enabled = true;
  ReportValidator validator(services, classes, clusters, options);

  for (int round = 0; round < 200; ++round) {
    ClusterReport report;
    report.cluster = ClusterId{rng.uniform_u64(clusters)};
    report.period_start = round;
    report.period_end = round + 1.0;
    report.ingress_rps.assign(classes, rng.uniform(10.0, 500.0));
    for (std::size_t s = 0; s < services; ++s) {
      ServiceClassMetrics m;
      m.service = ServiceId{s};
      m.cls = ClassId{rng.uniform_u64(classes)};
      m.completed = 50;
      m.completion_rps = rng.uniform(10.0, 400.0);
      m.mean_latency = rng.uniform(1e-3, 50e-3);
      m.max_latency = m.mean_latency * 2.0;
      m.mean_service_time = rng.uniform(1e-3, 10e-3);
      report.request_metrics.push_back(m);
      StationMetrics sm;
      sm.service = ServiceId{s};
      sm.servers = 1 + static_cast<unsigned>(rng.uniform_u64(4));
      sm.utilization = rng.uniform(0.0, 1.0);
      report.station_metrics.push_back(sm);
    }
    report.e2e.assign(classes, E2eMetrics{40, 20e-3, 45e-3});
    if (rng.bernoulli(0.8)) poison_report(report, rng);

    validator.admit(report);

    for (const double v : report.ingress_rps) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, validator.options().max_rps);
    }
    for (const auto& m : report.request_metrics) {
      EXPECT_LT(m.service.index(), services);
      EXPECT_LT(m.cls.index(), classes);
      EXPECT_TRUE(std::isfinite(m.mean_latency));
      EXPECT_GE(m.mean_latency, 0.0);
      EXPECT_TRUE(std::isfinite(m.completion_rps));
      EXPECT_GE(m.completion_rps, 0.0);
      EXPECT_TRUE(std::isfinite(m.mean_service_time));
      EXPECT_GE(m.mean_service_time, 0.0);
    }
    for (const auto& sm : report.station_metrics) {
      EXPECT_TRUE(std::isfinite(sm.utilization));
      EXPECT_GE(sm.utilization, 0.0);
    }
    for (const auto& e : report.e2e) {
      if (e.count == 0) continue;
      EXPECT_TRUE(std::isfinite(e.mean_latency));
      EXPECT_GE(e.mean_latency, 0.0);
      EXPECT_TRUE(std::isfinite(e.p99_latency));
    }
  }
}

// Guard-armed end-to-end runs under telemetry corruption and solver
// outages: the simulation never crashes, conserves requests, and stays
// bit-deterministic for a fixed seed.
TEST_P(FuzzTest, GuardArmedChaosRunsSatisfyInvariantsAndDeterminism) {
  const auto seed = static_cast<std::uint64_t>(21000 + GetParam());
  Scenario scenario = random_scenario(seed);
  Rng rng(seed ^ 0x6du);
  const std::size_t clusters = scenario.topology->cluster_count();
  const std::size_t n = 1 + rng.uniform_u64(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double start = rng.uniform(0.0, 12.0);
    const double len = rng.uniform(0.5, 6.0);
    if (rng.bernoulli(0.6)) {
      scenario.faults.telemetry_corruption(ClusterId{rng.uniform_u64(clusters)},
                                           start, len,
                                           rng.uniform(1.5, 50.0));
    } else {
      scenario.faults.solver_outage(start, len);
    }
  }
  scenario.guard.admission.enabled = true;
  scenario.guard.solver.enabled = rng.bernoulli(0.7);
  scenario.guard.rollout.enabled = rng.bernoulli(0.7);

  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 12.0;
  config.warmup = 4.0;
  config.seed = seed;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = rng.bernoulli(0.5);

  const ExperimentResult a = run_experiment(scenario, config);
  EXPECT_LE(a.completed, a.generated);
  if (a.completed > 0) {
    EXPECT_TRUE(std::isfinite(a.p99()));
    EXPECT_LE(a.p50(), a.p99() + 1e-12);
  }
  // The admission gate saw the corruption (when any fired pre-duration).
  const ExperimentResult b = run_experiment(scenario, config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.guard_fields_rejected, b.guard_fields_rejected);
  EXPECT_EQ(a.guard_spikes_clamped, b.guard_spikes_clamped);
  EXPECT_EQ(a.solver_fallbacks, b.solver_fallbacks);
  EXPECT_EQ(a.rollout_rollbacks, b.rollout_rollbacks);
  EXPECT_EQ(a.rule_pushes, b.rule_pushes);
}

// --- Forecasting & time-varying demand fuzzing ------------------------------

// Random demand-generator and forecast directive lines through the text
// loader: every line parses into schedule/forecast state or is rejected
// with a line-numbered error — never a crash, never a half-built schedule.
TEST_P(FuzzTest, DemandAndForecastDirectivesParseOrFailCleanly) {
  const auto seed = static_cast<std::uint64_t>(23000 + GetParam());
  Rng rng(seed);
  const std::string base =
      "cluster west\ncluster east\nrtt west east 20ms\n"
      "service s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=200\ndemand k west 50\n";

  auto token = [&](std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, rng.uniform_u64(options.size()));
    return std::string(*it);
  };
  for (int line = 0; line < 24; ++line) {
    std::string directive;
    if (rng.bernoulli(0.5)) {
      directive = "demand " + token({"diurnal", "ramp", "pulse"}) + " " +
                  token({"k", "nope"}) + " " + token({"west", "east", "mars"});
      const std::size_t extras = rng.uniform_u64(6);
      for (std::size_t i = 0; i < extras; ++i) {
        directive +=
            " " + token({"base=100", "base=x", "amp=50", "amp=-2",
                         "period=5s", "period=0s", "until=10s", "until=0s",
                         "phase=2s", "start=8s", "step=0.5s", "step=0s",
                         "from=10", "to=200", "@2s", "3s", "peak=500",
                         "decay=2s", "bogus=1"});
      }
    } else {
      directive = "forecast " + token({"last", "ewma", "linear",
                                       "holtwinters", "oracle", "arima"});
      const std::size_t extras = rng.uniform_u64(5);
      for (std::size_t i = 0; i < extras; ++i) {
        directive +=
            " " + token({"alpha=0.5", "alpha=2", "window=4", "window=1",
                         "season=8", "season=x", "hw_alpha=0.3", "hw_beta=2",
                         "hw_gamma=0.1", "backtest=6", "backtest=0",
                         "min_history=2", "smape_scale=0.6",
                         "max_confidence=0.9", "max_confidence=2", "bogus=1",
                         "7"});
      }
    }
    const std::string text = base + directive + "\n";
    try {
      const Scenario s = load_scenario_from_string(text);
      // Whatever parsed is coherent: a forecast directive armed a real
      // kind, and demand schedules validate against add_step's ordering
      // rules (enforced during finalize).
      if (directive.rfind("forecast", 0) == 0) {
        EXPECT_NE(s.forecast.kind, ForecastKind::kNone) << directive;
        s.forecast.validate();
      }
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 9"), std::string::npos)
          << directive << " -> " << e.what();
    }
  }
}

// Random but valid forecast configuration (kinds, gains, gating).
ForecastOptions random_forecast(Rng& rng) {
  ForecastOptions o;
  constexpr ForecastKind kKinds[] = {ForecastKind::kLast, ForecastKind::kEwma,
                                     ForecastKind::kLinear,
                                     ForecastKind::kHoltWinters,
                                     ForecastKind::kOracle};
  o.kind = kKinds[rng.uniform_u64(5)];
  o.ewma_alpha = rng.uniform(0.05, 1.0);
  o.window = 2 + rng.uniform_u64(10);
  o.season = 2 + rng.uniform_u64(12);
  o.backtest_window = 1 + rng.uniform_u64(16);
  o.min_history = rng.uniform_u64(6);
  o.smape_scale = rng.uniform(0.2, 1.5);
  o.max_confidence = rng.uniform(0.3, 1.0);
  return o;
}

// Replaces the scenario's demand with random time-varying streams: a mix of
// constant rates, diurnal sinusoids, ramps, and flash-crowd pulses.
void randomize_demand(DemandSchedule& demand, Rng& rng, const Application& app,
                      std::size_t clusters, double duration) {
  demand = DemandSchedule{};
  bool any = false;
  for (ClassId k : app.all_classes()) {
    for (std::size_t c = 0; c < clusters; ++c) {
      if (!rng.bernoulli(0.7)) continue;
      any = true;
      switch (rng.uniform_u64(4)) {
        case 0:
          demand.set_rate(k, ClusterId{c}, rng.uniform(10.0, 250.0));
          break;
        case 1: {
          DiurnalSpec s;
          s.base = rng.uniform(50.0, 200.0);
          s.amplitude = rng.uniform(10.0, s.base);
          s.period = rng.uniform(3.0, duration);
          s.phase = rng.uniform(0.0, s.period);
          s.end = duration;
          s.step = 0.5;
          add_diurnal(demand, k, ClusterId{c}, s);
          break;
        }
        case 2: {
          RampSpec s;
          s.from_rps = rng.uniform(10.0, 150.0);
          s.to_rps = rng.uniform(10.0, 300.0);
          s.start = rng.uniform(0.0, duration / 2.0);
          s.duration = rng.uniform(1.0, duration / 2.0);
          s.step = 0.5;
          add_ramp(demand, k, ClusterId{c}, s);
          break;
        }
        default: {
          PulseSpec s;
          s.base = rng.uniform(10.0, 100.0);
          s.peak = rng.uniform(s.base, 400.0);
          s.start = rng.uniform(0.5, duration / 2.0);
          s.width = rng.uniform(0.5, 4.0);
          s.decay = rng.bernoulli(0.5) ? rng.uniform(0.5, 4.0) : 0.0;
          add_pulse(demand, k, ClusterId{c}, s);
          break;
        }
      }
    }
  }
  if (!any) demand.set_rate(ClassId{0}, ClusterId{0}, 100.0);
}

// Forecast-armed runs over time-varying demand: job conservation holds, the
// run stays deterministic, and a serial grid is byte-identical to a
// parallel one (forecast state is per-simulation, nothing shared).
TEST_P(FuzzTest, ForecastArmedRunsConserveAndParallelizeIdentically) {
  const auto seed = static_cast<std::uint64_t>(25000 + GetParam());
  Scenario scenario = random_scenario(seed);
  Rng rng(seed ^ 0xf0u);
  const double duration = 14.0;
  randomize_demand(scenario.demand, rng, *scenario.app,
                   scenario.topology->cluster_count(), duration);

  std::vector<GridJob> jobs;
  std::vector<RunConfig> configs(3);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].policy = PolicyKind::kSlate;
    configs[i].duration = duration;
    configs[i].warmup = 4.0;
    configs[i].seed = seed + i;
    configs[i].slate.forecast = random_forecast(rng);
    configs[i].overload = random_overload(rng, scenario.app->class_count());
    jobs.push_back(GridJob{&scenario, configs[i], strfmt("job-%zu", i)});
  }

  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 4;
  const std::vector<ExperimentResult> a = run_experiment_grid(jobs, serial);
  const std::vector<ExperimentResult> b = run_experiment_grid(jobs, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    // Conservation with forecasting armed.
    EXPECT_EQ(a[i].jobs_submitted, a[i].jobs_served + a[i].jobs_cancelled +
                                       a[i].jobs_evicted +
                                       a[i].jobs_in_flight_at_end);
    EXPECT_LE(a[i].completed, a[i].generated);
    EXPECT_GT(a[i].forecast_solves, 0u);
    // Serial and parallel execution are byte-identical.
    EXPECT_EQ(a[i].generated, b[i].generated);
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].failed, b[i].failed);
    EXPECT_EQ(a[i].egress_bytes, b[i].egress_bytes);
    EXPECT_EQ(a[i].rule_pushes, b[i].rule_pushes);
    EXPECT_EQ(a[i].forecast_solves, b[i].forecast_solves);
    EXPECT_EQ(a[i].sim_events, b[i].sim_events);
    EXPECT_EQ(a[i].mean_latency(), b[i].mean_latency());  // bit-exact
    EXPECT_EQ(a[i].forecast_mean_smape, b[i].forecast_mean_smape);
    EXPECT_EQ(a[i].forecast_mean_confidence, b[i].forecast_mean_confidence);
  }
}

// Random drains over a random world: 1-2 evacuations with arbitrary
// overlap against faults, admission, and overload control. Whatever the
// interleaving — drain completing, pausing on sag, or cancelled by an
// outage of the same cluster — conservation laws and run-to-run
// determinism must hold.
std::vector<DrainSpec> random_drains(Rng& rng, std::size_t clusters) {
  std::vector<DrainSpec> drains;
  const std::size_t n = 1 + rng.uniform_u64(2);
  for (std::size_t i = 0; i < n; ++i) {
    DrainSpec spec;
    spec.cluster = ClusterId{rng.uniform_u64(clusters)};
    spec.start = rng.uniform(0.0, 12.0);
    spec.over = rng.uniform(1.0, 8.0);
    spec.step = rng.uniform(0.1, 1.0);
    spec.sag_threshold = rng.uniform(0.5, 0.95);
    drains.push_back(spec);
  }
  return drains;
}

TEST_P(FuzzTest, DrainRunsSatisfyConservationAndDeterminism) {
  const auto seed = static_cast<std::uint64_t>(31000 + GetParam());
  Scenario scenario = random_scenario(seed);
  Rng rng(seed ^ 0xd3u);
  if (rng.bernoulli(0.5)) {
    add_random_faults(scenario.faults, rng, scenario.topology->cluster_count(),
                      scenario.app->service_count(), 12.0);
  }

  for (PolicyKind policy : {PolicyKind::kLocalityFailover, PolicyKind::kSlate}) {
    SCOPED_TRACE(to_string(policy));
    RunConfig config;
    config.policy = policy;
    config.duration = 12.0;
    config.warmup = 4.0;
    config.seed = seed;
    config.failure.enabled = rng.bernoulli(0.5);
    config.drains = random_drains(rng, scenario.topology->cluster_count());
    if (rng.bernoulli(0.5)) config.slate.contingency.enabled = true;
    if (rng.bernoulli(0.5)) {
      config.admission = random_admission(rng, scenario.app->class_count());
    }
    if (rng.bernoulli(0.5)) {
      config.overload = random_overload(rng, scenario.app->class_count());
    }

    const ExperimentResult a = run_experiment(scenario, config);
    // Job conservation survives any drain interleaving.
    EXPECT_EQ(a.jobs_submitted, a.jobs_served + a.jobs_cancelled +
                                    a.jobs_evicted + a.jobs_in_flight_at_end);
    if (config.admission.enabled) {
      EXPECT_EQ(a.generated, a.admission_admitted + a.admission_rejected);
    }
    if (!(config.overload.deadline.enabled &&
          !config.overload.deadline.propagate)) {
      EXPECT_EQ(a.wasted_server_seconds, 0.0);
    }
    // Every drain resolves to exactly one terminal (or stays in flight at
    // the end of a short run); none is double-counted.
    EXPECT_LE(a.drains_completed + a.drains_cancelled, a.drains_started);
    EXPECT_LE(a.drains_started, config.drains.size());
    if (a.completed > 0) {
      EXPECT_TRUE(std::isfinite(a.p99()));
    }

    const ExperimentResult b = run_experiment(scenario, config);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.egress_bytes, b.egress_bytes);
    EXPECT_EQ(a.drains_started, b.drains_started);
    EXPECT_EQ(a.drains_completed, b.drains_completed);
    EXPECT_EQ(a.drains_cancelled, b.drains_cancelled);
    EXPECT_EQ(a.drain_steps, b.drain_steps);
    EXPECT_EQ(a.drain_pause_periods, b.drain_pause_periods);
    EXPECT_EQ(a.contingency_evals, b.contingency_evals);
    EXPECT_EQ(a.contingency_resolves, b.contingency_resolves);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace slate
