// FaultPlan validation and FaultInjector scheduling/stacking semantics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "runtime/scenario_loader.h"
#include "runtime/simulation.h"
#include "sim/simulator.h"

namespace slate {
namespace {

constexpr std::size_t kClusters = 3;
constexpr std::size_t kServices = 2;

TEST(FaultPlan, BuildersAppendSpecs) {
  FaultPlan plan;
  plan.cluster_outage(ClusterId{0}, 10.0, 5.0);
  plan.link_degradation(ClusterId{0}, ClusterId{1}, 0.0, 2.0, 3.0, 0.01);
  plan.link_partition(ClusterId{1}, ClusterId{2}, 1.0, 1.0);
  plan.service_slowdown(ServiceId{1}, ClusterId{2}, 4.0, 2.0, 10.0);
  plan.telemetry_blackout(ClusterId{2}, 8.0, 4.0);
  EXPECT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.faults()[0].kind, FaultKind::kClusterOutage);
  EXPECT_DOUBLE_EQ(plan.faults()[0].end(), 15.0);
  EXPECT_TRUE(plan.faults()[2].partition);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  FaultPlan plan;
  // Bad windows.
  EXPECT_THROW(plan.cluster_outage(ClusterId{0}, -1.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(plan.cluster_outage(ClusterId{0}, 0.0, 0.0),
               std::invalid_argument);
  // Missing ids.
  EXPECT_THROW(plan.cluster_outage(ClusterId{}, 0.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(plan.telemetry_blackout(ClusterId{}, 0.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(plan.service_slowdown(ServiceId{}, ClusterId{0}, 0.0, 5.0, 2.0),
               std::invalid_argument);
  // Self-loop and no-effect links.
  EXPECT_THROW(plan.link_partition(ClusterId{1}, ClusterId{1}, 0.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(
      plan.link_degradation(ClusterId{0}, ClusterId{1}, 0.0, 5.0, 1.0, 0.0),
      std::invalid_argument);
  // Slowdown with identity factor is a no-op, hence an authoring error.
  EXPECT_THROW(plan.service_slowdown(ServiceId{0}, ClusterId{0}, 0.0, 5.0, 1.0),
               std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, ValidateChecksWorldBounds) {
  FaultPlan plan;
  plan.cluster_outage(ClusterId{5}, 0.0, 1.0);
  EXPECT_THROW(plan.validate(3, 2), std::invalid_argument);
  EXPECT_NO_THROW(plan.validate(6, 2));

  FaultPlan svc_plan;
  svc_plan.service_slowdown(ServiceId{4}, ClusterId{0}, 0.0, 1.0, 2.0);
  EXPECT_THROW(svc_plan.validate(3, 2), std::invalid_argument);
  EXPECT_NO_THROW(svc_plan.validate(3, 5));
}

TEST(FaultInjector, OutageActivatesAndClearsOnSchedule) {
  Simulator sim;
  FaultPlan plan;
  plan.cluster_outage(ClusterId{1}, 10.0, 5.0);
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();

  sim.run_until(9.999);
  EXPECT_FALSE(inj.cluster_down(ClusterId{1}));
  EXPECT_EQ(inj.active_count(), 0u);
  sim.run_until(10.0);
  EXPECT_TRUE(inj.cluster_down(ClusterId{1}));
  EXPECT_FALSE(inj.cluster_down(ClusterId{0}));
  EXPECT_EQ(inj.active_count(), 1u);
  sim.run_until(15.0);
  EXPECT_FALSE(inj.cluster_down(ClusterId{1}));
  EXPECT_EQ(inj.active_count(), 0u);
  EXPECT_EQ(inj.transitions(), 2u);
}

TEST(FaultInjector, OverlappingOutagesReferenceCount) {
  Simulator sim;
  FaultPlan plan;
  plan.cluster_outage(ClusterId{0}, 1.0, 10.0);   // [1, 11)
  plan.cluster_outage(ClusterId{0}, 5.0, 2.0);    // [5, 7) nested
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();

  sim.run_until(6.0);
  EXPECT_TRUE(inj.cluster_down(ClusterId{0}));
  EXPECT_EQ(inj.active_count(), 2u);
  sim.run_until(8.0);
  // The nested fault ended; the outer one still holds the cluster down.
  EXPECT_TRUE(inj.cluster_down(ClusterId{0}));
  sim.run_until(12.0);
  EXPECT_FALSE(inj.cluster_down(ClusterId{0}));
  EXPECT_EQ(inj.transitions(), 4u);
}

TEST(FaultInjector, LinkEffectsStackMultiplicativelyAndDirectionally) {
  Simulator sim;
  FaultPlan plan;
  plan.link_degradation(ClusterId{0}, ClusterId{1}, 0.0, 10.0, 2.0, 0.01);
  plan.link_degradation(ClusterId{0}, ClusterId{1}, 2.0, 4.0, 3.0, 0.02);
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();

  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(inj.latency_factor(ClusterId{0}, ClusterId{1}), 2.0);
  EXPECT_DOUBLE_EQ(inj.extra_latency(ClusterId{0}, ClusterId{1}), 0.01);
  // The effect is directed: the reverse edge is untouched.
  EXPECT_DOUBLE_EQ(inj.latency_factor(ClusterId{1}, ClusterId{0}), 1.0);

  sim.run_until(3.0);  // both active
  EXPECT_DOUBLE_EQ(inj.latency_factor(ClusterId{0}, ClusterId{1}), 6.0);
  EXPECT_DOUBLE_EQ(inj.extra_latency(ClusterId{0}, ClusterId{1}), 0.03);

  sim.run_until(7.0);  // second cleared
  EXPECT_DOUBLE_EQ(inj.latency_factor(ClusterId{0}, ClusterId{1}), 2.0);
  sim.run_until(11.0);
  EXPECT_DOUBLE_EQ(inj.latency_factor(ClusterId{0}, ClusterId{1}), 1.0);
  // Additive effects cancel to within float rounding.
  EXPECT_NEAR(inj.extra_latency(ClusterId{0}, ClusterId{1}), 0.0, 1e-12);
}

TEST(FaultInjector, PartitionHoldsUntilLastCoveringFaultEnds) {
  Simulator sim;
  FaultPlan plan;
  plan.link_partition(ClusterId{0}, ClusterId{2}, 1.0, 4.0);  // [1, 5)
  plan.link_partition(ClusterId{0}, ClusterId{2}, 3.0, 4.0);  // [3, 7)
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();

  sim.run_until(2.0);
  EXPECT_TRUE(inj.link_partitioned(ClusterId{0}, ClusterId{2}));
  sim.run_until(6.0);  // first ended at 5, second still covers
  EXPECT_TRUE(inj.link_partitioned(ClusterId{0}, ClusterId{2}));
  sim.run_until(8.0);
  EXPECT_FALSE(inj.link_partitioned(ClusterId{0}, ClusterId{2}));
}

TEST(FaultInjector, SlowdownAppliesPerClusterOrEverywhere) {
  Simulator sim;
  FaultPlan plan;
  plan.service_slowdown(ServiceId{0}, ClusterId{1}, 0.0, 5.0, 4.0);
  plan.service_slowdown(ServiceId{1}, ClusterId{}, 0.0, 5.0, 2.0);  // all
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();

  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(ServiceId{0}, ClusterId{1}), 4.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(ServiceId{0}, ClusterId{0}), 1.0);
  for (std::size_t c = 0; c < kClusters; ++c) {
    EXPECT_DOUBLE_EQ(inj.compute_factor(ServiceId{1}, ClusterId{c}), 2.0);
  }
  sim.run_until(6.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(ServiceId{0}, ClusterId{1}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(ServiceId{1}, ClusterId{2}), 1.0);
}

TEST(FaultInjector, ArmSkipsElapsedAndClampsStraddlingFaults) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();  // now = 10
  FaultPlan plan;
  plan.cluster_outage(ClusterId{0}, 0.0, 5.0);   // fully in the past
  plan.cluster_outage(ClusterId{1}, 5.0, 10.0);  // straddles now: [5, 15)
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();

  sim.run_until(10.5);
  EXPECT_FALSE(inj.cluster_down(ClusterId{0}));  // never activated
  EXPECT_TRUE(inj.cluster_down(ClusterId{1}));   // activated immediately
  sim.run_until(15.0);
  EXPECT_FALSE(inj.cluster_down(ClusterId{1}));
  EXPECT_EQ(inj.transitions(), 2u);
}

TEST(FaultInjector, ArmTwiceThrows) {
  Simulator sim;
  FaultPlan plan;
  plan.cluster_outage(ClusterId{0}, 1.0, 1.0);
  FaultInjector inj(sim, plan, kClusters, kServices);
  inj.arm();
  EXPECT_THROW(inj.arm(), std::logic_error);
}

TEST(FaultInjector, ConstructorValidatesAgainstWorld) {
  Simulator sim;
  FaultPlan plan;
  plan.cluster_outage(ClusterId{7}, 0.0, 1.0);
  EXPECT_THROW(FaultInjector(sim, plan, kClusters, kServices),
               std::invalid_argument);
}

TEST(FaultInjector, TransitionObserverSeesActivationsInOrder) {
  Simulator sim;
  FaultPlan plan;
  plan.cluster_outage(ClusterId{0}, 2.0, 3.0);
  plan.telemetry_blackout(ClusterId{1}, 4.0, 4.0);
  FaultInjector inj(sim, plan, kClusters, kServices);
  std::vector<std::pair<FaultKind, bool>> log;
  inj.on_transition = [&](const FaultSpec& spec, bool active) {
    log.emplace_back(spec.kind, active);
  };
  inj.arm();
  sim.run_until(10.0);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], std::make_pair(FaultKind::kClusterOutage, true));
  EXPECT_EQ(log[1], std::make_pair(FaultKind::kTelemetryBlackout, true));
  EXPECT_EQ(log[2], std::make_pair(FaultKind::kClusterOutage, false));
  EXPECT_EQ(log[3], std::make_pair(FaultKind::kTelemetryBlackout, false));
}

// A drain that overlaps an outage of the same cluster: the outage wins,
// the drain cancels cleanly (no resumed stepping after the fault clears),
// and the whole interleaving is deterministic run-to-run.
TEST(FaultInjector, DrainOverlappingOutageCancelsDeterministically) {
  const Scenario make = load_scenario_from_string(R"(
cluster west
cluster east
rtt west east 20ms
service ingress
service worker
class api
call api root ingress compute=0.1ms
call api ingress worker compute=2ms
deploy * * servers=2 capacity=900
demand api west 300
demand api east 300
fault outage east @6s 5s
drain east @4s over=8s
)");

  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 20.0;
  config.warmup = 2.0;
  config.seed = 11;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;

  const ExperimentResult a = run_experiment(make, config);
  // The drain starts at 4s, the outage lands at 6s: started then cancelled,
  // never completed, and no steps accrue after the cancel (the fault clears
  // at 11s with 1s of nominal drain window left, but cancelled is final).
  EXPECT_EQ(a.drains_started, 1u);
  EXPECT_EQ(a.drains_cancelled, 1u);
  EXPECT_EQ(a.drains_completed, 0u);
  EXPECT_GT(a.drain_steps, 0u);
  // Cluster east serves again after the outage: keep restored to 1.0 means
  // traffic is not silently diverted for the rest of the run.
  EXPECT_GT(a.goodput_in_window(15.0, 20.0),
            0.9 * a.goodput_in_window(2.0, 4.0));

  const ExperimentResult b = run_experiment(make, config);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.drain_steps, b.drain_steps);
  EXPECT_EQ(a.drains_cancelled, b.drains_cancelled);
  EXPECT_EQ(a.e2e.samples(), b.e2e.samples());
}

}  // namespace
}  // namespace slate
