// Unit tests for src/util: ids, rng, stats, histogram, matrix, strfmt.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/histogram.h"
#include "util/ids.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strfmt.h"

namespace slate {
namespace {

// --- StrongId -------------------------------------------------------------

TEST(StrongId, DefaultIsInvalid) {
  ClusterId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ValueRoundTrip) {
  ServiceId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(ClassId{1}, ClassId{2});
  EXPECT_EQ(ClassId{3}, ClassId{3});
  EXPECT_NE(ClassId{3}, ClassId{4});
}

TEST(StrongId, Hashable) {
  std::unordered_set<ClusterId> set;
  set.insert(ClusterId{1});
  set.insert(ClusterId{1});
  set.insert(ClusterId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ClusterId, ServiceId>);
  static_assert(!std::is_same_v<ClassId, EdgeId>);
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(2.5));
  EXPECT_NEAR(stats.mean(), 2.5, 0.05);
  // Exponential: stddev == mean.
  EXPECT_NEAR(stats.stddev(), 2.5, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  StreamingStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(1.0, 3.0));
  EXPECT_NEAR(stats.mean(), 1.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, WeightedPickProportions) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.015);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.015);
}

TEST(Rng, WeightedPickSkipsNonPositive) {
  Rng rng(23);
  const std::vector<double> weights{0.0, 5.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_pick(weights), 1u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(31);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(31), p2(31);
  Rng a = p1.fork(5);
  Rng b = p2.fork(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// --- StreamingStats ---------------------------------------------------------

TEST(StreamingStats, Empty) {
  StreamingStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesCombined) {
  StreamingStats a, b, all;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

// --- SampleSet ---------------------------------------------------------------

TEST(SampleSet, QuantileInterpolation) {
  SampleSet s;
  for (double x : {4.0, 1.0, 3.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SampleSet, QuantileAfterInterleavedAdds) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
  s.add(30.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 20.0);
}

TEST(SampleSet, MeanAndClear) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SampleSet, StreamingExtremesNeedNoSort) {
  // min/max/mean stream alongside add() and must not depend on quantile()
  // having sorted the samples first.
  SampleSet s;
  for (double x : {5.0, -2.0, 9.0, 0.5}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.125);
  // samples() still reflects insertion order: nothing sorted yet.
  EXPECT_EQ(s.samples().front(), 5.0);
  s.add(-7.0);  // extremes update after a quantile-free history too
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, EmptyExtremesAreZero) {
  SampleSet s;
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(4.0);
  s.clear();
  EXPECT_EQ(s.min(), 0.0);  // clear() must reset the streamed extremes
  EXPECT_EQ(s.max(), 0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

// --- fit_line ----------------------------------------------------------------

TEST(FitLine, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4}, ys{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, ConstantX) {
  std::vector<double> xs{2, 2, 2}, ys{1, 2, 3};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLine, Empty) {
  const LinearFit fit = fit_line({}, {});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.intercept, 0.0);
}

// --- LatencyHistogram ---------------------------------------------------------

TEST(LatencyHistogram, CountAndMean) {
  LatencyHistogram h;
  h.add(0.001);
  h.add(0.003);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.002);
}

TEST(LatencyHistogram, QuantileAccuracy) {
  LatencyHistogram h(1e-5, 10.0, 512);
  Rng rng(41);
  SampleSet exact;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(0.05);
    h.add(x);
    exact.add(x);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double approx = h.quantile(q);
    const double truth = exact.quantile(q);
    EXPECT_NEAR(approx, truth, truth * 0.05) << "q=" << q;
  }
}

TEST(LatencyHistogram, ClampsOutOfRange) {
  LatencyHistogram h(1e-3, 1.0, 16);
  h.add(1e-9);   // below range -> first bucket
  h.add(100.0);  // above range -> last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(15), 1u);
}

TEST(LatencyHistogram, MergeAndReset) {
  LatencyHistogram a, b;
  a.add(0.01);
  b.add(0.02);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(LatencyHistogram, MergeShapeMismatchThrows) {
  LatencyHistogram a(1e-5, 1.0, 16), b(1e-5, 1.0, 32);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencyHistogram, BadConstructionThrows) {
  EXPECT_THROW(LatencyHistogram(0.0, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1.0, 0.5, 16), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1e-3, 1.0, 1), std::invalid_argument);
}

// --- FlatMatrix -----------------------------------------------------------------

TEST(FlatMatrix, Indexing) {
  FlatMatrix<int> m(2, 3, 7);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 7);
  m(1, 2) = 42;
  EXPECT_EQ(m(1, 2), 42);
  EXPECT_EQ(m(0, 0), 7);
  m.fill(0);
  EXPECT_EQ(m(1, 2), 0);
}

TEST(StrongId, StreamOutput) {
  std::ostringstream os;
  os << ClusterId{5} << " " << ClusterId{};
  EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(SampleSet, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.9), 0.0);
}

// --- strfmt -----------------------------------------------------------------------

TEST(Strfmt, Formats) {
  EXPECT_EQ(strfmt("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(strfmt("%s", ""), "");
  // Long output beyond any small-string buffer.
  const std::string long_out = strfmt("%0200d", 7);
  EXPECT_EQ(long_out.size(), 200u);
}

}  // namespace
}  // namespace slate
