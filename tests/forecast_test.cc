// Demand forecasting (docs/forecasting.md): per-cell predictors, the online
// backtest/confidence machinery, controller integration, and the
// reactive <= predictive <= oracle acceptance gauntlet.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "forecast/demand_forecaster.h"
#include "forecast/forecaster.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"
#include "util/matrix.h"
#include "workload/generators.h"

namespace slate {
namespace {

// --- ForecastKind -----------------------------------------------------------

TEST(ForecastKind, StringRoundTrip) {
  for (const ForecastKind k :
       {ForecastKind::kNone, ForecastKind::kLast, ForecastKind::kEwma,
        ForecastKind::kLinear, ForecastKind::kHoltWinters,
        ForecastKind::kOracle}) {
    ForecastKind parsed = ForecastKind::kNone;
    ASSERT_TRUE(forecast_kind_from_string(to_string(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  ForecastKind out = ForecastKind::kEwma;
  EXPECT_FALSE(forecast_kind_from_string("arima", &out));
  EXPECT_EQ(out, ForecastKind::kEwma);  // untouched on failure
}

TEST(ForecastOptions, ValidateRejectsOutOfRange) {
  ForecastOptions o;
  o.validate();  // defaults are fine

  ForecastOptions bad = o;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.window = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.season = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.hw_alpha = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.smape_scale = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.max_confidence = 1.2;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.backtest_window = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = o;
  bad.horizon = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --- Cell forecasters -------------------------------------------------------

TEST(CellForecaster, LastValueCarriesForward) {
  LastValueForecaster f;
  EXPECT_DOUBLE_EQ(f.predict(), 0.0);
  f.observe(42.0);
  EXPECT_DOUBLE_EQ(f.predict(), 42.0);
  f.observe(7.0);
  EXPECT_DOUBLE_EQ(f.predict(), 7.0);
}

TEST(CellForecaster, EwmaSeedsThenSmooths) {
  EwmaForecaster f(0.5);
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);  // first observation seeds
  f.observe(20.0);
  EXPECT_DOUBLE_EQ(f.predict(), 15.0);
  f.observe(15.0);
  EXPECT_DOUBLE_EQ(f.predict(), 15.0);
}

TEST(CellForecaster, LinearTrendExtrapolatesExactLine) {
  LinearTrendForecaster f(4);
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);  // one point: last-value
  for (const double v : {12.0, 14.0, 16.0}) f.observe(v);
  // Perfect slope-2 line through the window -> next value exactly.
  EXPECT_NEAR(f.predict(), 18.0, 1e-9);
  // The ring slides: keep feeding the line, keep predicting on it.
  for (const double v : {18.0, 20.0}) f.observe(v);
  EXPECT_NEAR(f.predict(), 22.0, 1e-9);
}

TEST(CellForecaster, LinearTrendClampsNegative) {
  LinearTrendForecaster f(4);
  for (const double v : {6.0, 4.0, 2.0, 0.5}) f.observe(v);
  EXPECT_GE(f.predict(), 0.0);
}

TEST(CellForecaster, HoltWintersLearnsSeasonality) {
  // season=4 periodic pattern; two full seasons initialize the model.
  const std::vector<double> pattern = {100.0, 200.0, 300.0, 200.0};
  HoltWintersForecaster f(0.35, 0.08, 0.3, 4);
  for (int rep = 0; rep < 2; ++rep) {
    for (const double v : pattern) f.observe(v);
  }
  // Initialized: from here each prediction should land on the upcoming
  // phase of the pattern, not on the last value.
  for (int rep = 0; rep < 3; ++rep) {
    for (const double v : pattern) {
      EXPECT_NEAR(f.predict(), v, 15.0);
      f.observe(v);
    }
  }
  // After a few more seasons the fit is tight.
  for (const double v : pattern) {
    EXPECT_NEAR(f.predict(), v, 2.0);
    f.observe(v);
  }
}

TEST(CellForecaster, HoltWintersWarmupIsLastValue) {
  HoltWintersForecaster f(0.35, 0.08, 0.3, 4);
  for (const double v : {10.0, 50.0, 90.0}) {
    f.observe(v);
    EXPECT_DOUBLE_EQ(f.predict(), v);  // < 2 seasons: naive carry-forward
  }
}

TEST(CellForecaster, FactoryMatchesKind) {
  ForecastOptions o;
  o.kind = ForecastKind::kNone;
  EXPECT_EQ(make_cell_forecaster(o), nullptr);
  o.kind = ForecastKind::kOracle;
  EXPECT_EQ(make_cell_forecaster(o), nullptr);
  for (const ForecastKind k : {ForecastKind::kLast, ForecastKind::kEwma,
                               ForecastKind::kLinear,
                               ForecastKind::kHoltWinters}) {
    o.kind = k;
    EXPECT_NE(make_cell_forecaster(o), nullptr);
  }
}

// --- DemandForecaster backtest & blending -----------------------------------

ForecastOptions last_value_options() {
  ForecastOptions o;
  o.kind = ForecastKind::kLast;
  o.min_history = 2;
  o.backtest_window = 8;
  return o;
}

TEST(DemandForecaster, RejectsNonPredictiveKinds) {
  ForecastOptions o;
  o.kind = ForecastKind::kNone;
  EXPECT_THROW(DemandForecaster(1, 1, o), std::invalid_argument);
  o.kind = ForecastKind::kOracle;
  EXPECT_THROW(DemandForecaster(1, 1, o), std::invalid_argument);
}

TEST(DemandForecaster, PerfectForecasterEarnsFullConfidence) {
  DemandForecaster f(1, 2, last_value_options());
  FlatMatrix<double> measured(1, 2, 0.0);
  measured(0, 0) = 100.0;
  measured(0, 1) = 50.0;
  for (int i = 0; i < 6; ++i) f.step(measured);
  // Constant series: last-value is exact, sMAPE 0, confidence maxed.
  EXPECT_NEAR(f.cell_smape(0, 0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.confidence()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f.confidence()(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(f.predicted()(0, 0), 100.0);
  EXPECT_NEAR(f.mean_smape(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.mean_confidence(), 1.0);
}

TEST(DemandForecaster, ChronicallyWrongForecasterLosesConfidence) {
  DemandForecaster f(1, 1, last_value_options());
  FlatMatrix<double> measured(1, 1, 0.0);
  // Alternate 10 / 1000: last-value is maximally wrong every step.
  for (int i = 0; i < 10; ++i) {
    measured(0, 0) = (i % 2 == 0) ? 10.0 : 1000.0;
    f.step(measured);
  }
  EXPECT_GT(f.cell_smape(0, 0), 1.5);  // sMAPE near its ceiling of 2
  EXPECT_DOUBLE_EQ(f.confidence()(0, 0), 0.0);
}

TEST(DemandForecaster, ConfidenceGatedUntilMinHistory) {
  ForecastOptions o = last_value_options();
  o.min_history = 4;
  DemandForecaster f(1, 1, o);
  FlatMatrix<double> measured(1, 1, 100.0);
  // Step i scores the prediction made at step i-1: after k steps the cell
  // has scored k-1 predictions. Perfect forecaster, but unproven.
  for (int i = 0; i < 4; ++i) {
    f.step(measured);
    EXPECT_DOUBLE_EQ(f.confidence()(0, 0), 0.0);
  }
  f.step(measured);  // 4th scored prediction unlocks confidence
  EXPECT_GT(f.confidence()(0, 0), 0.99);
}

TEST(DemandForecaster, ZeroConfidenceBlendIsBitIdentical) {
  ForecastOptions o = last_value_options();
  o.min_history = 1000000;  // never earns confidence
  DemandForecaster f(2, 2, o);
  FlatMatrix<double> measured(2, 2, 0.0);
  measured(0, 0) = 0.1 + 0.2;  // a value with repeating binary expansion
  measured(1, 1) = 123.456789;
  for (int i = 0; i < 8; ++i) f.step(measured);
  FlatMatrix<double> out(2, 2, -1.0);
  f.blend(measured, &out);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t c = 0; c < 2; ++c) {
      // Exact bit equality, not approximate: an unconfident forecaster must
      // reproduce the reactive controller's solver input exactly.
      EXPECT_EQ(out(k, c), measured(k, c));
    }
  }
}

TEST(DemandForecaster, BlendInterpolatesByConfidence) {
  ForecastOptions o = last_value_options();
  o.min_history = 1;
  o.smape_scale = 0.6;
  DemandForecaster f(1, 1, o);
  FlatMatrix<double> measured(1, 1, 100.0);
  for (int i = 0; i < 6; ++i) f.step(measured);
  ASSERT_DOUBLE_EQ(f.confidence()(0, 0), 1.0);
  // Full confidence: blend lands on the prediction, not the measurement.
  FlatMatrix<double> fresh(1, 1, 40.0);
  FlatMatrix<double> out(1, 1, 0.0);
  f.blend(fresh, &out);
  EXPECT_DOUBLE_EQ(out(0, 0), f.predicted()(0, 0));
}

TEST(DemandForecaster, BiasTracksSignedError) {
  DemandForecaster f(1, 1, last_value_options());
  FlatMatrix<double> measured(1, 1, 0.0);
  // Rising series: last-value chronically underpredicts -> negative bias.
  for (int i = 0; i < 8; ++i) {
    measured(0, 0) = 100.0 + 10.0 * i;
    f.step(measured);
  }
  EXPECT_LT(f.cell_bias(0, 0), 0.0);
}

// --- Controller integration: the three-arm gauntlet -------------------------

// Follow-the-sun on the two-cluster chain: anti-phase 40 s sinusoids whose
// local peaks exceed local capacity. The total is constant, so a controller
// that knows where demand is going can always place the spill; a reactive
// one chases the sun a couple control periods late.
Scenario diurnal_scenario() {
  TwoClusterChainParams params;
  params.west_servers = 1;
  params.east_servers = 1;
  Scenario s = make_two_cluster_chain_scenario(params);
  s.demand = DemandSchedule{};
  DiurnalSpec west;
  west.base = 400.0;
  west.amplitude = 360.0;
  west.period = 40.0;
  west.end = 600.0;
  west.step = 1.0;
  DiurnalSpec east = west;
  east.phase = 20.0;  // anti-phase: east peaks while west troughs
  add_diurnal(s.demand, ClassId{0}, ClusterId{0}, west);
  add_diurnal(s.demand, ClassId{0}, ClusterId{1}, east);
  return s;
}

RunConfig diurnal_config(ForecastKind kind) {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 240.0;
  config.warmup = 150.0;  // Holt-Winters initializes at 2 seasons = 80 s
  config.seed = 11;
  config.control_period = 1.0;
  config.slate.forecast.kind = kind;
  config.slate.forecast.season = 40;  // 40 s cycle / 1 s control period
  return config;
}

TEST(ForecastGauntlet, PredictiveBeatsReactiveOracleBoundsBoth) {
  const ExperimentResult reactive =
      run_experiment(diurnal_scenario(), diurnal_config(ForecastKind::kNone));
  const ExperimentResult predictive = run_experiment(
      diurnal_scenario(), diurnal_config(ForecastKind::kHoltWinters));
  const ExperimentResult oracle =
      run_experiment(diurnal_scenario(), diurnal_config(ForecastKind::kOracle));

  // The arms really differ in what fed the optimizer.
  EXPECT_EQ(reactive.forecast_solves, 0u);
  EXPECT_GT(predictive.forecast_solves, 50u);
  EXPECT_GT(oracle.forecast_solves, 50u);
  // The seasonal model proved itself on the backtest.
  EXPECT_GE(predictive.forecast_mean_confidence, 0.5);
  EXPECT_LT(predictive.forecast_mean_smape, 0.3);

  // The ordering the subsystem exists for: solving on predicted demand
  // beats chasing measured demand by >= 10% mean latency, and hindsight
  // bounds prediction.
  EXPECT_LT(predictive.mean_latency(), 0.9 * reactive.mean_latency());
  EXPECT_LE(oracle.mean_latency(), predictive.mean_latency() * 1.02);
}

TEST(ForecastGauntlet, StationaryLoadSeesNoRegression) {
  // Constant demand: the forecaster converges on the measured estimate and
  // the predictive arm must not be worse than reactive beyond noise.
  TwoClusterChainParams params;
  const Scenario s1 = make_two_cluster_chain_scenario(params);
  const Scenario s2 = make_two_cluster_chain_scenario(params);
  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 5;
  const ExperimentResult reactive = run_experiment(s1, config);
  config.slate.forecast.kind = ForecastKind::kHoltWinters;
  const ExperimentResult predictive = run_experiment(s2, config);
  EXPECT_GT(predictive.forecast_solves, 0u);
  EXPECT_LT(predictive.mean_latency(), 1.05 * reactive.mean_latency());
  EXPECT_EQ(predictive.completed + predictive.failed,
            reactive.completed + reactive.failed);
}

TEST(ForecastGauntlet, UnconfidentForecasterIsByteIdenticalToReactive) {
  // min_history larger than the run: confidence stays 0 every period, the
  // blend returns the measured matrix bit-identically, and the entire
  // simulation must reproduce the reactive run exactly.
  TwoClusterChainParams params;
  RunConfig config;
  config.duration = 40.0;
  config.warmup = 10.0;
  config.seed = 9;
  const ExperimentResult reactive =
      run_experiment(make_two_cluster_chain_scenario(params), config);
  config.slate.forecast.kind = ForecastKind::kEwma;
  config.slate.forecast.min_history = 1000000;
  const ExperimentResult gated =
      run_experiment(make_two_cluster_chain_scenario(params), config);
  EXPECT_GT(gated.forecast_solves, 0u);  // armed, stepped, predicted...
  EXPECT_DOUBLE_EQ(gated.forecast_mean_confidence, 0.0);  // ...but unproven
  EXPECT_EQ(gated.generated, reactive.generated);
  EXPECT_EQ(gated.completed, reactive.completed);
  EXPECT_EQ(gated.failed, reactive.failed);
  EXPECT_EQ(gated.rule_pushes, reactive.rule_pushes);
  EXPECT_EQ(gated.egress_bytes, reactive.egress_bytes);
  EXPECT_EQ(gated.sim_events, reactive.sim_events);
  EXPECT_EQ(gated.e2e.count(), reactive.e2e.count());
  EXPECT_EQ(gated.mean_latency(), reactive.mean_latency());  // bit-exact
}

TEST(ForecastGauntlet, NoForecastFlagDisarmsScenarioDirective) {
  // slate_cli --no-forecast: the scenario ships `forecast holtwinters`, the
  // flag must strip it so the reactive arm really is reactive.
  Scenario s = diurnal_scenario();
  s.forecast.kind = ForecastKind::kHoltWinters;
  RunConfig config = diurnal_config(ForecastKind::kNone);
  config.duration = 40.0;
  config.warmup = 10.0;
  config.ignore_scenario_forecast = true;
  const ExperimentResult r = run_experiment(s, config);
  EXPECT_EQ(r.forecast_solves, 0u);
  EXPECT_DOUBLE_EQ(r.forecast_mean_smape, -1.0);
}

TEST(ForecastGauntlet, DemandTraceRecordsAllThreeSignals) {
  Scenario s = diurnal_scenario();
  RunConfig config = diurnal_config(ForecastKind::kHoltWinters);
  config.duration = 30.0;
  config.warmup = 5.0;
  config.record_demand_trace = true;
  const ExperimentResult r = run_experiment(s, config);
  ASSERT_FALSE(r.demand_trace.empty());
  // One row per (period, class, cluster): 2 cells, ~30 periods.
  EXPECT_GE(r.demand_trace.size(), 40u);
  bool saw_offered = false;
  for (const DemandTracePoint& p : r.demand_trace) {
    EXPECT_LT(p.cls, 1u);
    EXPECT_LT(p.cluster, 2u);
    EXPECT_GE(p.offered_rps, 0.0);
    EXPECT_GE(p.estimated_rps, 0.0);
    EXPECT_GE(p.forecast_rps, 0.0);
    if (p.offered_rps > 0.0) saw_offered = true;
  }
  EXPECT_TRUE(saw_offered);
}

}  // namespace
}  // namespace slate
