// Topology synthesis: determinism (golden digest, serial-vs-parallel),
// structural guarantees of generated worlds, spec parsing, and the
// `topology synth` scenario directive.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/scenario_loader.h"
#include "topogen/topogen.h"

namespace slate {
namespace {

TopoGenOptions small_options() {
  TopoGenOptions options;
  options.seed = 7;
  options.clusters = 6;
  options.services = 24;
  options.classes = 4;
  return options;
}

// Pinned digest of the default-knob 20x100 world at seed 1. Any change to
// the generator's output — even a reordered loop — must regenerate this
// constant deliberately (run the test; the failure message prints the new
// value). This is the byte-identical-across-runs guarantee.
constexpr std::uint64_t kGoldenDigest = 0x266b63cebb84992fULL;

TEST(TopoGen, GeneratesRequestedShape) {
  const TopoGenOptions options = small_options();
  const Scenario scenario = make_synth_scenario(options);
  EXPECT_EQ(scenario.topology->cluster_count(), options.clusters);
  EXPECT_EQ(scenario.app->service_count(), options.services);
  EXPECT_EQ(scenario.app->class_count(), options.classes);
  EXPECT_FALSE(scenario.demand.streams().empty());
  // Feasible by construction: deployment validates, every class has demand
  // and its entry service deployed somewhere.
  scenario.deployment->validate();
  for (ClassId k : scenario.app->all_classes()) {
    const ServiceId entry =
        scenario.app->traffic_class(k).graph.node(0).service;
    EXPECT_FALSE(scenario.deployment->clusters_for(entry).empty())
        << "class " << k.index() << " entry service undeployed";
  }
}

TEST(TopoGen, TotalDemandMatchesKnob) {
  const TopoGenOptions options = small_options();
  const Scenario scenario = make_synth_scenario(options);
  EXPECT_NEAR(scenario.demand.total_rate_at(0.0), options.total_rps,
              options.total_rps * 1e-9);
}

TEST(TopoGen, LatencyAndPriceCorrelateWithDistance) {
  const Scenario scenario = make_synth_scenario(small_options());
  const Topology& topo = *scenario.topology;
  const std::size_t C = topo.cluster_count();
  // Symmetric, floored latency; price within [near, far] bounds.
  const TopoGenOptions o = small_options();
  for (std::size_t a = 0; a < C; ++a) {
    for (std::size_t b = a + 1; b < C; ++b) {
      const double ab = topo.one_way_latency(ClusterId{a}, ClusterId{b});
      const double ba = topo.one_way_latency(ClusterId{b}, ClusterId{a});
      EXPECT_DOUBLE_EQ(ab, ba);
      EXPECT_GE(ab, o.rtt_floor_ms / 2.0 * 1e-3);
      const double price = topo.egress_price_per_gb(ClusterId{a}, ClusterId{b});
      EXPECT_GE(price, o.egress_near - 1e-12);
      EXPECT_LE(price, o.egress_far + 1e-12);
    }
  }
}

TEST(TopoGen, ByteIdenticalAcrossRuns) {
  const TopoGenOptions options = small_options();
  const std::uint64_t a = scenario_digest(make_synth_scenario(options));
  const std::uint64_t b = scenario_digest(make_synth_scenario(options));
  EXPECT_EQ(a, b);
}

TEST(TopoGen, DifferentSeedsDiffer) {
  TopoGenOptions options = small_options();
  const std::uint64_t a = scenario_digest(make_synth_scenario(options));
  options.seed = 8;
  const std::uint64_t b = scenario_digest(make_synth_scenario(options));
  EXPECT_NE(a, b);
}

TEST(TopoGen, GoldenDigestDefaultWorld) {
  const TopoGenOptions options;  // 20x100x8, seed 1
  const std::uint64_t digest = scenario_digest(make_synth_scenario(options));
  EXPECT_EQ(digest, kGoldenDigest)
      << "generator output changed; new digest 0x" << std::hex << digest;
}

TEST(TopoGen, SerialVsParallelIdentical) {
  // Generation must not depend on global state or host threading: four
  // concurrent generators produce the serial digest, bit for bit.
  const TopoGenOptions options = small_options();
  const std::uint64_t serial = scenario_digest(make_synth_scenario(options));
  std::vector<std::uint64_t> digests(4, 0);
  std::vector<std::thread> workers;
  workers.reserve(digests.size());
  for (std::size_t t = 0; t < digests.size(); ++t) {
    workers.emplace_back([&, t] {
      digests[t] = scenario_digest(make_synth_scenario(options));
    });
  }
  for (auto& w : workers) w.join();
  for (const std::uint64_t d : digests) EXPECT_EQ(d, serial);
}

// --- Spec parsing ------------------------------------------------------------

TEST(TopoGenSpec, ParsesKeyValuePairs) {
  const TopoGenOptions o =
      parse_topogen_spec("clusters=30,services=200 classes=12\tseed=42");
  EXPECT_EQ(o.clusters, 30u);
  EXPECT_EQ(o.services, 200u);
  EXPECT_EQ(o.classes, 12u);
  EXPECT_EQ(o.seed, 42u);
  // Untouched knobs keep their defaults.
  EXPECT_DOUBLE_EQ(o.target_utilization, TopoGenOptions{}.target_utilization);
}

TEST(TopoGenSpec, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(parse_topogen_spec("cluster=5"), std::invalid_argument);
  EXPECT_THROW(parse_topogen_spec("clusters=banana"), std::invalid_argument);
  EXPECT_THROW(parse_topogen_spec("clusters"), std::invalid_argument);
  EXPECT_THROW(parse_topogen_spec("clusters=1"), std::invalid_argument);
  EXPECT_THROW(parse_topogen_spec("services=2,classes=8"),
               std::invalid_argument);
  EXPECT_THROW(parse_topogen_spec("target_util=1.5"), std::invalid_argument);
}

// --- The `topology synth` directive ------------------------------------------

TEST(TopoGenDirective, LoadsAndMatchesDirectGeneration) {
  const Scenario loaded = load_scenario_from_string(
      "topology synth clusters=6 services=24 classes=4 seed=7\n");
  const Scenario direct = make_synth_scenario(small_options());
  EXPECT_EQ(scenario_digest(loaded), scenario_digest(direct));
}

TEST(TopoGenDirective, LayersDemandAndFaultsOnTop) {
  const Scenario scenario = load_scenario_from_string(
      "scenario layered\n"
      "topology synth clusters=6 services=24 classes=4 seed=7\n"
      "demand class-0 c0 @30s 250\n"
      "fault outage c1 @10s 5s\n"
      "overload priority class-1 2\n");
  EXPECT_EQ(scenario.name, "layered");
  const ClassId k0 = scenario.app->find_class("class-0");
  ASSERT_TRUE(k0.valid());
  const ClusterId c0 = scenario.topology->find_cluster("c0");
  ASSERT_TRUE(c0.valid());
  // The synthesized baseline rate still applies before the override kicks in.
  EXPECT_GT(scenario.demand.rate_at(k0, c0, 31.0), 0.0);
  EXPECT_EQ(scenario.faults.size(), 1u);
  ASSERT_GE(scenario.overload.queue.class_priority.size(), 2u);
  EXPECT_EQ(scenario.overload.queue.class_priority[1], 2);
}

TEST(TopoGenDirective, DeployOverrideApplies) {
  const Scenario scenario = load_scenario_from_string(
      "topology synth clusters=6 services=24 classes=4 seed=7\n"
      "deploy s00 c0 servers=9 capacity=1234\n");
  const ServiceId s = scenario.app->find_service("s00");
  const ClusterId c = scenario.topology->find_cluster("c0");
  ASSERT_TRUE(s.valid());
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(scenario.deployment->servers(s, c), 9u);
  EXPECT_DOUBLE_EQ(scenario.deployment->capacity_rps(s, c), 1234.0);
}

TEST(TopoGenDirective, RejectsStructuralDirectivesAfterSynth) {
  EXPECT_THROW(load_scenario_from_string(
                   "topology synth clusters=6 services=24 classes=4\n"
                   "cluster extra\n"),
               std::runtime_error);
  EXPECT_THROW(load_scenario_from_string(
                   "topology synth clusters=6 services=24 classes=4\n"
                   "service extra\n"),
               std::runtime_error);
  EXPECT_THROW(load_scenario_from_string(
                   "topology synth clusters=6 services=24 classes=4\n"
                   "topology synth clusters=6 services=24 classes=4\n"),
               std::runtime_error);
}

TEST(TopoGenDirective, RejectsSynthAfterStructuralDirectives) {
  EXPECT_THROW(load_scenario_from_string(
                   "cluster west\n"
                   "topology synth clusters=6 services=24 classes=4\n"),
               std::runtime_error);
}

TEST(TopoGenDirective, BadSpecFailsWithLineNumber) {
  try {
    (void)load_scenario_from_string("topology synth clusters=banana\n");
    FAIL() << "expected a loader error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace slate
