#include "util/inline_function.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

namespace slate {
namespace {

TEST(InlineFunction, EmptyThrowsBadFunctionCall) {
  InlineFunction<int()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_THROW(fn(), std::bad_function_call);
  InlineFunction<int()> null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InlineFunction, SmallCaptureStoresInline) {
  int x = 41;
  InlineFunction<int()> fn = [x]() { return x + 1; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 42);
}

TEST(InlineFunction, FatCaptureFallsBackToHeap) {
  // 128 bytes of capture cannot fit a 64-byte buffer.
  struct Fat {
    double values[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  } fat;
  InlineFunction<double()> fn = [fat]() { return fat.values[15]; };
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 16.0);
}

TEST(InlineFunction, CustomBufferSizeBoundary) {
  struct Bytes32 {
    char data[32] = {7};
  } b;
  InlineFunction<char(), 32> fits = [b]() { return b.data[0]; };
  EXPECT_TRUE(fits.is_inline());
  EXPECT_EQ(fits(), 7);

  struct Bytes40 {
    char data[40] = {9};
  } big;
  InlineFunction<char(), 32> spills = [big]() { return big.data[0]; };
  EXPECT_FALSE(spills.is_inline());
  EXPECT_EQ(spills(), 9);
}

TEST(InlineFunction, MoveTransfersInlineTarget) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<void()> a = [counter]() { ++*counter; };
  EXPECT_TRUE(a.is_inline());

  InlineFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);

  InlineFunction<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
}

TEST(InlineFunction, MoveTransfersHeapTarget) {
  struct Fat {
    std::shared_ptr<int> counter;
    double pad[16] = {};
  };
  auto counter = std::make_shared<int>(0);
  Fat fat;
  fat.counter = counter;
  InlineFunction<void()> a = [fat]() { ++*fat.counter; };
  EXPECT_FALSE(a.is_inline());

  InlineFunction<void()> b = std::move(a);
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(InlineFunction, DestroysCapturedStateOnReset) {
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> weak = tracked;
  InlineFunction<void()> fn = [tracked]() {};
  tracked.reset();
  EXPECT_FALSE(weak.expired());
  fn.reset();
  EXPECT_TRUE(weak.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, DestroysCapturedStateOnDestruction) {
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> weak = tracked;
  {
    InlineFunction<void()> fn = [tracked]() {};
    tracked.reset();
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(InlineFunction, MoveOnlyCaptureWorks) {
  // std::function cannot hold this closure; InlineFunction must.
  auto owned = std::make_unique<int>(5);
  InlineFunction<int()> fn = [owned = std::move(owned)]() { return *owned; };
  EXPECT_EQ(fn(), 5);
}

TEST(InlineFunction, NestedInlineFunctionCapture) {
  InlineFunction<int(), 32> inner = []() { return 3; };
  InlineFunction<int()> outer = [inner = std::move(inner)]() mutable {
    return inner() + 1;
  };
  EXPECT_EQ(outer(), 4);
}

TEST(InlineFunction, ArgumentsAndReturnValues) {
  InlineFunction<double(double, double)> fn = [](double a, double b) {
    return a * b;
  };
  EXPECT_EQ(fn(6.0, 7.0), 42.0);
}

TEST(InlineFunction, ReassignmentReplacesTarget) {
  InlineFunction<int()> fn = []() { return 1; };
  EXPECT_EQ(fn(), 1);
  fn = []() { return 2; };
  EXPECT_EQ(fn(), 2);
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, SelfMoveAssignIsSafe) {
  InlineFunction<int()> fn = []() { return 9; };
  InlineFunction<int()>& alias = fn;
  fn = std::move(alias);
  EXPECT_EQ(fn(), 9);
}

}  // namespace
}  // namespace slate
