#include "util/pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace slate {
namespace {

struct Tracked {
  explicit Tracked(int* counter = nullptr, int v = 0)
      : live_counter(counter), value(v) {
    if (live_counter != nullptr) ++*live_counter;
  }
  ~Tracked() {
    if (live_counter != nullptr) --*live_counter;
  }
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;

  int* live_counter;
  int value;
};

TEST(Pool, MakeConstructsAndRecyclesOnRelease) {
  int live = 0;
  Pool<Tracked> pool(4);
  {
    PoolPtr<Tracked> p = pool.make(&live, 7);
    EXPECT_EQ(live, 1);
    EXPECT_EQ(p->value, 7);
    EXPECT_EQ(pool.live(), 1u);
  }
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, SlotsAreReusedAfterRecycle) {
  Pool<int> pool(8);
  PoolPtr<int> a = pool.make(1);
  const int* first_address = a.get();
  a.reset();
  PoolPtr<int> b = pool.make(2);
  // LIFO freelist: the recycled slot comes straight back.
  EXPECT_EQ(b.get(), first_address);
  EXPECT_EQ(pool.chunk_count(), 1u);
}

TEST(Pool, GrowsByChunksWithoutMovingLiveObjects) {
  Pool<int> pool(2);
  std::vector<PoolPtr<int>> held;
  std::vector<int*> addresses;
  for (int i = 0; i < 7; ++i) {
    held.push_back(pool.make(i));
    addresses.push_back(held.back().get());
  }
  EXPECT_GE(pool.chunk_count(), 4u);
  EXPECT_EQ(pool.capacity(), pool.chunk_count() * 2);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(*held[i], i);
    EXPECT_EQ(held[i].get(), addresses[i]);  // chunks never relocate
  }
}

TEST(PoolPtr, CopyBumpsRefcountAndLastReleaseRecycles) {
  int live = 0;
  Pool<Tracked> pool;
  PoolPtr<Tracked> a = pool.make(&live);
  EXPECT_EQ(a.use_count(), 1u);
  {
    PoolPtr<Tracked> b = a;
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(b.get(), a.get());
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(live, 1);
  a.reset();
  EXPECT_EQ(live, 0);
}

TEST(PoolPtr, MoveStealsWithoutRefcountChange) {
  int live = 0;
  Pool<Tracked> pool;
  PoolPtr<Tracked> a = pool.make(&live);
  Tracked* raw = a.get();
  PoolPtr<Tracked> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(live, 1);
  b.reset();
  EXPECT_EQ(live, 0);
}

TEST(PoolPtr, CopyAssignReleasesPreviousTarget) {
  int live = 0;
  Pool<Tracked> pool;
  PoolPtr<Tracked> a = pool.make(&live, 1);
  PoolPtr<Tracked> b = pool.make(&live, 2);
  EXPECT_EQ(live, 2);
  b = a;
  EXPECT_EQ(live, 1);  // old target of b destroyed
  EXPECT_EQ(b->value, 1);
  EXPECT_EQ(a.use_count(), 2u);
}

TEST(PoolPtr, SelfAssignIsSafe) {
  int live = 0;
  Pool<Tracked> pool;
  PoolPtr<Tracked> a = pool.make(&live);
  PoolPtr<Tracked>& alias = a;
  a = alias;
  EXPECT_EQ(live, 1);
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(PoolPtr, EqualityComparesSlots) {
  Pool<int> pool;
  PoolPtr<int> a = pool.make(1);
  PoolPtr<int> b = a;
  PoolPtr<int> c = pool.make(1);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(PoolPtr<int>{} == PoolPtr<int>{});
}

TEST(PoolPtr, MemberDestructorsRunOnRecycle) {
  // A pooled object owning a shared_ptr must release it when recycled.
  struct Holder {
    std::shared_ptr<int> ref;
  };
  Pool<Holder> pool;
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> weak = tracked;
  PoolPtr<Holder> h = pool.make();
  h->ref = tracked;
  tracked.reset();
  EXPECT_FALSE(weak.expired());
  h.reset();
  EXPECT_TRUE(weak.expired());
}

TEST(Pool, ManyChurnCyclesStayBounded) {
  Pool<int> pool(16);
  for (int round = 0; round < 1000; ++round) {
    std::vector<PoolPtr<int>> batch;
    for (int i = 0; i < 16; ++i) batch.push_back(pool.make(i));
  }
  // Steady-state churn within one chunk's capacity never grows the arena.
  EXPECT_EQ(pool.chunk_count(), 1u);
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace slate
