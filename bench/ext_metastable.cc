// Extension experiment: metastable failure under a load burst, and gray
// failure under a slow replica — with and without overload control.
//
// Phase 1 (burst): a single-server chain in West runs at u ~ 0.84, then the
// offered load more than triples for 10 seconds. Without overload control
// the unbounded station queues absorb the burst as a multi-thousand-job
// backlog; every queued job's caller times out at 0.5s, yet the work is
// still served — servers burn 100% of their time on requests nobody is
// waiting for, and goodput stays collapsed long after the burst ends (the
// sustaining feedback loop of a metastable failure: Bronson et al., HotOS
// '21). With bounded queues + deadline propagation the burst is shed at
// the door, expired work is cancelled at dispatch instead of served, and
// goodput snaps back within a couple of seconds:
//
//   pre      — goodput in [20, 30), before the burst
//   burst    — goodput in [32, 40), during
//   post     — goodput in [55, 70), after the burst cleared (15s grace)
//
// Phase 2 (gray failure): West's svc-1 turns 8x slower for 30 seconds (slow,
// not down — the hardest failure mode for static routing). A per-(service,
// destination) circuit breaker trips on the timeout failure rate, ejects
// (svc-1, West) from the candidate set, and the locality-failover data
// plane fails over to East mid-request. Without the breaker every call
// keeps aiming at the slow replica and eats the timeout.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

constexpr double kBurstStart = 30.0;
constexpr double kBurstEnd = 40.0;

RunConfig burst_config(bool protected_run) {
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 70.0;
  config.warmup = 5.0;
  config.seed = 23;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  // Local-only has one candidate; retries must re-aim at it (which is
  // exactly the amplification that feeds the metastable loop).
  config.failure.retry_excludes_failed = false;
  if (protected_run) {
    config.overload.queue.max_queue = 64;
    config.overload.deadline.enabled = true;
    config.overload.deadline.default_deadline = 0.5;
    config.overload.deadline.propagate = true;
  }
  return config;
}

void run_burst_phase() {
  TwoClusterChainParams params;
  params.west_rps = 420.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  const ClassId chain = scenario.app->find_class("chain");
  scenario.demand.add_step(chain, ClusterId{0}, kBurstStart, 1500.0);
  scenario.demand.add_step(chain, ClusterId{0}, kBurstEnd, params.west_rps);

  std::vector<GridJob> jobs;
  jobs.push_back({&scenario, burst_config(false), "unprotected"});
  jobs.push_back({&scenario, burst_config(true), "protected"});
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("\nphase 1: 10s burst to 1500 RPS on a ~500 RPS chain\n");
  std::printf("%-14s %8s %8s %8s %10s %8s %10s %12s\n", "config", "pre_rps",
              "burst", "post_rps", "post/pre", "shed", "cancelled",
              "wasted_sec");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const char* label = i == 0 ? "unprotected" : "protected";
    const double pre = r.goodput_in_window(20.0, kBurstStart);
    const double burst = r.goodput_in_window(32.0, kBurstEnd);
    const double post = r.goodput_in_window(55.0, 70.0);
    std::printf("%-14s %8.1f %8.1f %8.1f %10.2f %8llu %10llu %12.1f\n", label,
                pre, burst, post, pre > 0.0 ? post / pre : 0.0,
                static_cast<unsigned long long>(r.total_shed()),
                static_cast<unsigned long long>(r.deadline_cancellations),
                r.wasted_server_seconds);
    std::printf("data,metastable_burst,%s,%.2f,%.2f,%.2f,%llu,%llu,%.2f\n",
                label, pre, burst, post,
                static_cast<unsigned long long>(r.total_shed()),
                static_cast<unsigned long long>(r.deadline_cancellations),
                r.wasted_server_seconds);
    for (std::size_t b = 0; b < r.completed_series.size(); ++b) {
      std::printf("data,metastable_series,%s,%.1f,%llu\n", label,
                  static_cast<double>(b) * r.series_bucket,
                  static_cast<unsigned long long>(r.completed_series[b]));
    }
  }
}

constexpr double kGrayStart = 30.0;
constexpr double kGrayEnd = 60.0;

RunConfig gray_config(bool protected_run) {
  RunConfig config;
  config.policy = PolicyKind::kLocalityFailover;
  config.duration = 80.0;
  config.warmup = 5.0;
  config.seed = 29;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.25;
  config.failure.max_retries = 1;
  if (protected_run) {
    config.overload.breaker.enabled = true;
  }
  return config;
}

void run_gray_phase() {
  TwoClusterChainParams params;
  params.west_rps = 300.0;
  params.east_rps = 100.0;
  params.west_servers = 1;
  params.east_servers = 2;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.service_slowdown(scenario.app->find_service("svc-1"),
                                   ClusterId{0}, kGrayStart,
                                   kGrayEnd - kGrayStart, 8.0);

  std::vector<GridJob> jobs;
  jobs.push_back({&scenario, gray_config(false), "no-breaker"});
  jobs.push_back({&scenario, gray_config(true), "breaker"});
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("\nphase 2: svc-1 in West 8x slower for 30s (gray failure)\n");
  std::printf("%-14s %9s %9s %9s %8s %9s %10s\n", "config", "pre_rps",
              "gray_rps", "post_rps", "errors", "timeouts", "ejections");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const char* label = i == 0 ? "no-breaker" : "breaker";
    const double pre = r.goodput_in_window(20.0, kGrayStart);
    const double gray = r.goodput_in_window(35.0, kGrayEnd);
    const double post = r.goodput_in_window(65.0, 80.0);
    std::printf("%-14s %9.1f %9.1f %9.1f %8llu %9llu %10llu\n", label, pre,
                gray, post, static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.call_timeouts),
                static_cast<unsigned long long>(r.breaker_ejections));
    std::printf("data,gray_failure,%s,%.2f,%.2f,%.2f,%llu,%llu,%llu\n", label,
                pre, gray, post, static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.call_timeouts),
                static_cast<unsigned long long>(r.breaker_ejections));
  }
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "metastable burst + gray failure, with/without "
                      "overload control");
  run_burst_phase();
  run_gray_phase();
  std::printf(
      "\nreading: the unprotected burst run leaves a ~10,000-job backlog\n"
      "that drains at ~500 jobs/s while every caller has already timed\n"
      "out — post-burst goodput stays collapsed for the rest of the run\n"
      "even though offered load is back under capacity. Bounded queues\n"
      "shed the burst at admission, deadline propagation cancels expired\n"
      "work before it reaches a server, and post-burst goodput returns to\n"
      "the pre-burst level within seconds. In the gray-failure phase the\n"
      "circuit breaker converts a sustained timeout storm into a fast\n"
      "failover: (svc-1, West) is ejected after ~1 window of failures and\n"
      "traffic rides East until probes find the replica healthy again.\n");
  return 0;
}
