// Extension experiment: interaction between request routing and autoscaling
// (paper §2 "Cluster Autoscalers" and §5 "Interaction between request
// routing and autoscaler").
//
// A 4x load burst hits West at t=30s. The autoscaler needs an evaluation
// period plus a provisioning delay (~tens of seconds: image pull, app
// init) before new replicas serve traffic — the paper's point that
// autoscaling is >1000x slower than request routing. Configurations:
//
//   local + autoscaler      — scaling alone; the burst rides out the
//                             provisioning gap at exploding latency
//   slate, fixed capacity   — routing alone; the burst is absorbed by
//                             offloading to East within ~1 control period
//   slate + autoscaler      — co-existence: routing bridges the gap, the
//                             autoscaler then brings capacity home and
//                             SLATE's live-server feedback re-localizes
//
// We report mean/p99 latency in three windows: pre-burst, the provisioning
// gap, and post-scaling steady state.
#include <cstdio>
#include <iterator>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

struct WindowedResult {
  double gap_mean, gap_p99;       // t in (30, 60]: burst, before capacity
  double steady_mean, steady_p99; // t in (90, 120]: after provisioning
  std::uint64_t scale_ups;
  unsigned final_west_servers;
  double final_remote_fraction;
};

}  // namespace

int main() {
  bench::print_header("Extension",
                      "request routing x autoscaler interaction (§5)");
  struct Config {
    const char* name;
    PolicyKind policy;
    bool autoscale;
  };
  const Config configs[] = {
      {"local + autoscaler", PolicyKind::kLocalOnly, true},
      {"slate, fixed fleet", PolicyKind::kSlate, false},
      {"slate + autoscaler", PolicyKind::kSlate, true},
  };

  TwoClusterChainParams params;
  params.west_rps = 200.0;
  params.east_rps = 100.0;
  params.west_servers = 1;
  params.east_servers = 2;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.demand.set_rate(ClassId{0}, ClusterId{0}, 200.0);
  scenario.demand.add_step(ClassId{0}, ClusterId{0}, 30.0, 800.0);

  // Two runs per configuration: the engine measures one window per run;
  // deterministic seeds make the pair consistent. All 6 fan out together.
  std::vector<GridJob> jobs;
  for (const auto& cfg : configs) {
    RunConfig config;
    config.policy = cfg.policy;
    config.seed = 61;
    config.autoscaler_enabled = cfg.autoscale;
    config.autoscaler.target_utilization = 0.55;
    config.autoscaler.evaluation_period = 10.0;
    config.autoscaler.provision_delay = 30.0;
    config.autoscaler.cooldown = 15.0;

    config.duration = 60.0;   // provisioning-gap window
    config.warmup = 30.0;
    jobs.push_back({&scenario, config, cfg.name});
    config.duration = 120.0;  // post-scaling steady window
    config.warmup = 90.0;
    jobs.push_back({&scenario, config, cfg.name});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("%-22s | %21s | %21s | %8s %7s %8s\n", "",
              "provisioning gap", "post-scaling steady", "scaleups",
              "west_n", "remote%");
  std::printf("%-22s | %10s %10s | %10s %10s |\n", "configuration", "mean",
              "p99", "mean", "p99");
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    const auto& cfg = configs[i];
    const ExperimentResult& gap = results[2 * i];
    const ExperimentResult& steady = results[2 * i + 1];
    WindowedResult r;
    r.gap_mean = gap.mean_latency() * 1e3;
    r.gap_p99 = gap.p99() * 1e3;
    r.steady_mean = steady.mean_latency() * 1e3;
    r.steady_p99 = steady.p99() * 1e3;
    r.scale_ups = steady.autoscaler_scale_ups;
    const ServiceId svc1{1};
    r.final_west_servers = steady.final_servers[svc1.index() * 2 + 0];
    r.final_remote_fraction =
        steady.remote_fraction_from(ClassId{0}, 1, ClusterId{0});
    std::printf("%-22s | %8.1fms %8.1fms | %8.1fms %8.1fms | %8llu %7u %7.1f%%\n",
                cfg.name, r.gap_mean, r.gap_p99, r.steady_mean, r.steady_p99,
                static_cast<unsigned long long>(r.scale_ups),
                r.final_west_servers, 100 * r.final_remote_fraction);
    std::printf("data,autoscaler,%s,%.2f,%.2f,%.2f,%.2f,%llu\n", cfg.name,
                r.gap_mean, r.gap_p99, r.steady_mean, r.steady_p99,
                static_cast<unsigned long long>(r.scale_ups));
  }
  std::printf(
      "\nreading: the autoscaler alone leaves the burst melting down for the\n"
      "whole provisioning gap; SLATE absorbs it within one control period by\n"
      "offloading; combined, routing bridges the gap and then returns traffic\n"
      "home as scaled-up local capacity appears in the live-server feedback.\n");
  return 0;
}
