// Extension experiment: bi-level autoscaling x TE co-design on a
// follow-the-sun diurnal (docs/autoscaling.md; paper §5 "Interaction
// between request routing and autoscaler").
//
// Three clusters running the two-stage chain (ingress -> svc-1 @ 4ms),
// phase-shifted diurnal sinusoids (the 120s "sun" walks a -> b -> c; total
// offered load is constant at 900 RPS but each region swings 50..550), and
// differentiated server prices: c runs on cheap power at a fraction of a's
// $/server-hour. Egress is deliberately cheap ($0.01/GB) and the triangle
// nearly equilateral, so WHERE spill lands is a cost decision, not a
// latency decision.
//
// Four arms, all scored on total dollars (egress + server-hours) over the
// measured window, goodput, and p99-vs-SLO attainment:
//
//   te-fixed     SLATE TE, capacity frozen at peak provisioning. The
//                routing is optimal but every trough's servers idle at
//                full price.
//   scaler-only  locality failover + per-station autoscalers. Cheap — no
//                egress, troughs scaled in — but every ramp outruns the
//                provisioning delay with nowhere to spill, so p99 blows
//                through the SLO twice per period.
//   open-loop    SLATE TE + autoscalers, no coupling. Each loop chases
//                the other: TE spreads a ramp onto capacity the scaler is
//                still provisioning, the scaler sizes for load TE already
//                moved away, and nobody sees server prices.
//   co-design    the `bilevel` coordinator: the solver prices planned busy
//                work at each cluster's $/server-hour and shifts spill
//                toward cheap capacity, autoscalers provision for the
//                routed plan, and the solver plans on provisioning-lag-
//                aware effective capacity.
//
// The pinned reading (tests/bilevel_test.cc): co-design strictly beats
// open-loop on total dollars at equal-or-better goodput and SLO
// attainment, and beats every arm on cost-at-SLO.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"
#include "workload/generators.h"

using namespace slate;

namespace {

constexpr double kSloSeconds = 0.100;  // per-request p99 SLO

Scenario make_follow_the_sun_scenario() {
  LinearChainOptions app;
  app.chain_length = 1;
  app.service_compute_mean = 4.0e-3;  // 250 RPS per server
  Scenario scenario;
  scenario.name = "follow-the-sun";
  scenario.app = std::make_unique<Application>(make_linear_chain_app(app));

  Topology topology(3);
  const ClusterId a{0}, b{1}, c{2};
  topology.set_rtt(a, b, 8e-3);
  topology.set_rtt(a, c, 10e-3);
  topology.set_rtt(b, c, 10e-3);
  topology.set_uniform_egress_price(0.01);
  // The cost landscape: c's server-hours cost a fifth of a's.
  topology.set_server_price(a, 0.15);
  topology.set_server_price(b, 0.12);
  topology.set_server_price(c, 0.03);
  scenario.topology = std::make_unique<Topology>(std::move(topology));

  // Peak-provisioned: 4 svc-1 servers = 1000 RPS per cluster against a 550
  // RPS regional peak. The fixed arm runs this fleet as-is; the autoscaled
  // arms walk troughs down and peaks back up.
  scenario.deployment = std::make_unique<Deployment>(*scenario.app, 3);
  for (ServiceId s : scenario.app->all_services()) {
    const bool gateway = scenario.app->service_name(s) == "ingress";
    for (std::size_t i = 0; i < 3; ++i) {
      const unsigned n = gateway ? 2 : 4;
      const double mu = gateway ? 1.0 / 0.1e-3 : 1.0 / 4.0e-3;
      scenario.deployment->deploy(s, ClusterId{i}, n, 0.95 * mu * n);
    }
  }

  // The sun: 120s period, each region 40s behind the previous, constant
  // 900 RPS total. end covers the longest run below.
  const ClassId chain = scenario.app->find_class("chain");
  DiurnalSpec spec;
  spec.base = 300.0;
  spec.amplitude = 250.0;
  spec.period = 120.0;
  spec.end = 600.0;
  spec.step = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    spec.phase = 40.0 * static_cast<double>(i);
    add_diurnal(scenario.demand, chain, ClusterId{i}, spec);
  }
  return scenario;
}

RunConfig base_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 360.0;  // two full periods measured after warmup
  config.warmup = 120.0;
  config.seed = 23;
  config.control_period = 1.0;
  return config;
}

AutoscalerOptions scaler_options() {
  AutoscalerOptions options;
  options.target_utilization = 0.6;
  options.evaluation_period = 5.0;
  options.provision_delay = 10.0;
  options.up_cooldown = 5.0;
  options.down_cooldown = 20.0;  // ups chase the sun, downs lag the trough
  options.min_servers = 1;
  options.max_servers = 16;
  return options;
}

double slo_attainment(const ExperimentResult& r) {
  std::size_t hits = 0, total = 0;
  for (const SampleSet& s : r.e2e_by_class) {
    for (double v : s.samples()) {
      ++total;
      if (v <= kSloSeconds) ++hits;
    }
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "bi-level autoscaling x TE co-design, follow-the-sun");

  const Scenario scenario = make_follow_the_sun_scenario();

  std::vector<GridJob> jobs;
  {
    RunConfig fixed = base_config();
    jobs.push_back({&scenario, fixed, "te-fixed"});

    RunConfig scaler_only = base_config();
    scaler_only.policy = PolicyKind::kLocalityFailover;
    scaler_only.autoscaler_enabled = true;
    scaler_only.autoscaler = scaler_options();
    jobs.push_back({&scenario, scaler_only, "scaler-only"});

    RunConfig open_loop = base_config();
    open_loop.autoscaler_enabled = true;
    open_loop.autoscaler = scaler_options();
    jobs.push_back({&scenario, open_loop, "open-loop"});

    RunConfig co_design = open_loop;
    co_design.bilevel.enabled = true;
    co_design.bilevel.server_cost_weight = 3600.0;  // $/server-HOUR parity
    jobs.push_back({&scenario, co_design, "co-design"});
  }

  const std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("\n%-12s %10s %10s %10s %10s %8s %8s %9s\n", "arm",
              "total_$", "server_$", "egress_$", "goodput", "p99_ms",
              "slo_att", "srv_hours");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    std::printf("%-12s %10.5f %10.5f %10.5f %10.1f %8.2f %8.4f %9.3f\n",
                jobs[i].label.c_str(), r.total_cost_dollars(),
                r.server_cost_dollars, r.egress_cost_dollars, r.goodput_rps(),
                r.p99() * 1e3, slo_attainment(r), r.server_seconds / 3600.0);
    std::printf("data,%s,%.6f,%.6f,%.6f,%.2f,%.3f,%.5f\n",
                jobs[i].label.c_str(), r.total_cost_dollars(),
                r.server_cost_dollars, r.egress_cost_dollars, r.goodput_rps(),
                r.p99() * 1e3, slo_attainment(r));
  }

  const ExperimentResult& co = results[3];
  std::printf(
      "\nbilevel telemetry: %llu plans pushed down, %llu capacity overrides, "
      "%llu ups / %llu downs\n",
      static_cast<unsigned long long>(co.bilevel_plans_pushed),
      static_cast<unsigned long long>(co.bilevel_capacity_overrides),
      static_cast<unsigned long long>(co.autoscaler_scale_ups),
      static_cast<unsigned long long>(co.autoscaler_scale_downs));

  std::printf(
      "\nreading: te-fixed pays peak servers around the clock; scaler-only "
      "is cheap\nbut blows the SLO on every ramp (no spill path while "
      "capacity provisions);\nopen-loop couples two controllers that "
      "cannot see each other and prices\nnothing. co-design routes spill "
      "toward cheap capacity, provisions for the\nplan, and plans on "
      "capacity that will actually exist — lowest total dollars\namong "
      "SLO-attaining arms.\n");
  return 0;
}
