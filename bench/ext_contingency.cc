// Extension experiment: contingency-aware TE — N-1 failover headroom and
// coordinated drains (docs/resilience.md).
//
// Three clusters running a two-stage chain (ingress -> svc-1 @ 4ms):
//
//   cluster   svc-1 servers   capacity   demand      distance
//   a             2            500 RPS    400 RPS    10ms to b, 30ms to c
//   b             2            500 RPS    400 RPS    10ms to a, 30ms to c
//   c             4           1000 RPS    100 RPS    30ms to both
//
// Reactive SLATE keeps everything local (a and b at 80%, c idle). When b
// dies, its 400 RPS anycasts to the nearest alive ingress — a — whose svc-1
// now faces 800 RPS against 500 of capacity. Queues blow past the 0.5s
// deadline, timed-out work still burns server time (propagate=off), retries
// re-aim at the saturated survivor, and goodput collapses metastably until
// the damped controller walks the spill over to c.
//
// Part A — surprise outage. Contingency mode stress-tests every plan
// against each single-cluster failure: "if b dies, can the reroute fit
// under a 0.95 utilization cap?" It cannot, so the solver re-prices with
// padded capacity until the primary plan pre-spreads enough of a's and b's
// load onto c that the post-failure flood lands on warm headroom. The armed
// run holds >= 95% of pre-fault goodput through the outage window; the
// reactive run collapses.
//
// Part B — planned removal. Taking b out on purpose, two ways: yanking it
// (outage, zero warning) versus draining it (`drain` directive: front-door
// weight walks to zero in bounded steps over 15s, solver and autoscaler see
// the capacity shrinking). Scored on lost goodput over the removal window
// plus wasted server-seconds; the drain wins by >= 10x.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

constexpr double kFaultStart = 40.0;
constexpr double kFaultEnd = 50.0;

// The three-cluster world described above.
Scenario make_triangle_scenario() {
  LinearChainOptions app;
  app.chain_length = 1;
  app.service_compute_mean = 4.0e-3;  // 250 RPS per server
  Scenario scenario;
  scenario.name = "contingency-triangle";
  scenario.app = std::make_unique<Application>(make_linear_chain_app(app));

  Topology topology(3);
  const ClusterId a{0}, b{1}, c{2};
  topology.set_rtt(a, b, 10e-3);
  topology.set_rtt(a, c, 30e-3);
  topology.set_rtt(b, c, 30e-3);
  topology.set_uniform_egress_price(0.08);
  scenario.topology = std::make_unique<Topology>(std::move(topology));

  scenario.deployment = std::make_unique<Deployment>(*scenario.app, 3);
  const unsigned servers[3] = {2, 2, 4};
  for (ServiceId s : scenario.app->all_services()) {
    const bool gateway = scenario.app->service_name(s) == "ingress";
    for (std::size_t i = 0; i < 3; ++i) {
      // The gateway does ~no work; svc-1 is the capacity that matters.
      const unsigned n = gateway ? 2 : servers[i];
      const double mu = gateway ? 1.0 / 0.1e-3 : 1.0 / 4.0e-3;
      scenario.deployment->deploy(s, ClusterId{i}, n, 0.95 * mu * n);
    }
  }

  const ClassId chain = scenario.app->find_class("chain");
  scenario.demand.set_rate(chain, a, 400.0);
  scenario.demand.set_rate(chain, b, 400.0);
  scenario.demand.set_rate(chain, c, 100.0);
  return scenario;
}

RunConfig base_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 70.0;
  config.warmup = 10.0;
  config.seed = 17;
  config.control_period = 1.0;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  // Deadlines carried but not propagated: timed-out work still burns server
  // time — the wasted_server_seconds the drain comparison is scored on.
  config.overload.deadline.enabled = true;
  config.overload.deadline.default_deadline = 0.5;
  config.overload.deadline.propagate = false;
  return config;
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "N-1 failover headroom + coordinated drain vs yank");

  // --- Part A: surprise single-cluster outage ----------------------------
  Scenario outage_world = make_triangle_scenario();
  outage_world.faults.cluster_outage(ClusterId{1}, kFaultStart,
                                     kFaultEnd - kFaultStart);

  std::vector<GridJob> jobs;
  {
    RunConfig reactive = base_config();
    jobs.push_back({&outage_world, reactive, "reactive"});
    RunConfig armed = base_config();
    armed.slate.contingency.enabled = true;
    armed.slate.contingency.max_post_failure_utilization = 0.95;
    jobs.push_back({&outage_world, armed, "contingency"});
  }

  // --- Part B: planned removal, drain vs yank ----------------------------
  Scenario yank_world = make_triangle_scenario();
  yank_world.faults.cluster_outage(ClusterId{1}, kFaultStart,
                                   70.0 - kFaultStart);
  Scenario drain_world = make_triangle_scenario();
  {
    RunConfig yank = base_config();
    jobs.push_back({&yank_world, yank, "yank"});
    RunConfig drain = base_config();
    DrainSpec spec;
    spec.cluster = ClusterId{1};
    spec.start = kFaultStart;
    spec.over = 15.0;
    drain.drains.push_back(spec);
    jobs.push_back({&drain_world, drain, "drain"});
  }

  std::vector<ExperimentResult> results = bench::run_grid(jobs);
  const char* arms[4] = {"reactive", "contingency", "yank", "drain"};

  // Part A report: goodput before / during / after the 10s outage.
  std::printf("%-14s %9s %9s %9s %8s %8s %10s %8s\n", "arm", "pre_rps",
              "fault_rps", "post_rps", "hold", "margin", "resolves", "errors");
  for (std::size_t i = 0; i < 2; ++i) {
    const ExperimentResult& r = results[i];
    const double pre = r.goodput_in_window(30.0, kFaultStart);
    const double during = r.goodput_in_window(42.0, 49.0);
    const double post = r.goodput_in_window(53.0, 60.0);
    const double hold = pre > 0.0 ? during / pre : 0.0;
    std::printf("%-14s %9.1f %9.1f %9.1f %7.1f%% %8.3f %10llu %8llu\n",
                arms[i], pre, during, post, hold * 100.0,
                r.contingency_margin_worst,
                static_cast<unsigned long long>(r.contingency_resolves),
                static_cast<unsigned long long>(r.failed));
    std::printf("data,contingency,%s,%.2f,%.2f,%.2f,%.4f,%.4f,%llu,%llu\n",
                arms[i], pre, during, post, hold,
                r.contingency_margin_worst,
                static_cast<unsigned long long>(r.contingency_resolves),
                static_cast<unsigned long long>(r.failed));
    for (std::size_t t = 0; t < r.completed_series.size(); ++t) {
      std::printf("data,goodput_series,%s,%.1f,%llu\n", arms[i],
                  static_cast<double>(t) * r.series_bucket,
                  static_cast<unsigned long long>(r.completed_series[t]));
    }
  }

  // Part B report: lost goodput over the removal window + wasted work.
  std::printf("\n%-14s %10s %12s %10s %8s %8s %8s\n", "arm", "lost_reqs",
              "wasted_sec", "score", "steps", "pauses", "errors");
  double score[2] = {0.0, 0.0};
  for (std::size_t i = 2; i < 4; ++i) {
    const ExperimentResult& r = results[i];
    const double pre = r.goodput_in_window(30.0, kFaultStart);
    const double window = 65.0 - kFaultStart;
    double served = 0.0;
    for (std::size_t t = static_cast<std::size_t>(kFaultStart);
         t < static_cast<std::size_t>(65.0) && t < r.completed_series.size();
         ++t) {
      served += static_cast<double>(r.completed_series[t]);
    }
    const double lost = std::max(0.0, pre * window - served);
    score[i - 2] = lost + r.wasted_server_seconds;
    std::printf("%-14s %10.1f %12.2f %10.1f %8llu %8llu %8llu\n",
                arms[i], lost, r.wasted_server_seconds, score[i - 2],
                static_cast<unsigned long long>(r.drain_steps),
                static_cast<unsigned long long>(r.drain_pause_periods),
                static_cast<unsigned long long>(r.failed));
    std::printf("data,drain_vs_yank,%s,%.2f,%.3f,%.2f,%llu,%llu\n",
                arms[i], lost, r.wasted_server_seconds, score[i - 2],
                static_cast<unsigned long long>(r.drain_steps),
                static_cast<unsigned long long>(r.drains_completed));
  }
  if (score[1] > 0.0) {
    std::printf("data,drain_advantage,%.2f\n", score[0] / score[1]);
  }

  std::printf(
      "\nreading: reactive SLATE runs a and b hot (80%%) because local is\n"
      "cheapest; b's outage doubles a's ingress against fixed capacity and\n"
      "goodput collapses until the damped controller walks the spill to c.\n"
      "Contingency mode pays a little latency up front — the padded solve\n"
      "pre-spreads load onto c so every single-cluster failure reroutes\n"
      "under the 0.95 utilization cap — and rides out the same outage at\n"
      ">= 95%% of pre-fault goodput. For planned removals the drain walks\n"
      "b's front-door weight to zero over 15s with the solver watching the\n"
      "capacity shrink, beating the yank by >= 10x on lost-goodput plus\n"
      "wasted server-seconds.\n");
  return 0;
}
