// Figure 3: "Limitation in capacity-based offloading missing better
// load-to-latency tradeoff opportunities."
//
// The conceptual figure made empirical: sweep offered load on West and
// compare mean latency under (a) Waterfall with a conservative threshold
// (offloads too early, pays network latency needlessly), (b) Waterfall with
// an aggressive threshold (keeps traffic local deep into the queueing
// blow-up), and (c) SLATE's per-load optimum. The two static curves cross
// the optimal curve exactly as the paper sketches: conservative loses at
// low load, aggressive loses at high load.
//
// 18 independent (load, policy) points — fanned out across the grid.
#include <cstdio>
#include <deque>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  bench::print_header(
      "Figure 3", "static conservative/aggressive thresholds vs optimal");

  std::deque<Scenario> scenarios;
  std::vector<GridJob> jobs;
  std::vector<double> loads;
  for (double load = 200.0; load <= 700.0 + 1e-9; load += 100.0) {
    loads.push_back(load);
    TwoClusterChainParams params;
    params.west_rps = load;
    params.east_rps = 100.0;
    params.rtt = 25e-3;
    scenarios.push_back(make_two_cluster_chain_scenario(params));
    const Scenario* scenario = &scenarios.back();

    RunConfig config;
    config.duration = 40.0;
    config.warmup = 10.0;
    config.seed = 11;

    config.policy = PolicyKind::kWaterfall;
    config.waterfall.threshold_scale = 0.35;
    jobs.push_back({scenario, config, "waterfall-conservative"});
    config.waterfall.threshold_scale = 1.04;
    jobs.push_back({scenario, config, "waterfall-aggressive"});
    config.policy = PolicyKind::kSlate;
    config.waterfall.threshold_scale = 1.0;
    jobs.push_back({scenario, config, "slate"});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("%-10s %18s %18s %14s   (mean latency, ms)\n", "west_load",
              "waterfall-cons.", "waterfall-aggr.", "slate");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double conservative = results[3 * i].mean_latency() * 1e3;
    const double aggressive = results[3 * i + 1].mean_latency() * 1e3;
    const double slate = results[3 * i + 2].mean_latency() * 1e3;
    std::printf("%-10.0f %18.2f %18.2f %14.2f\n", loads[i], conservative,
                aggressive, slate);
    std::printf("data,fig3,%.0f,%.3f,%.3f,%.3f\n", loads[i], conservative,
                aggressive, slate);
  }
  std::printf(
      "\nshape check: the conservative threshold wastes network latency at\n"
      "low-mid load; the aggressive one melts down at high load; SLATE\n"
      "tracks the lower envelope.\n");
  return 0;
}
