// Figure 3: "Limitation in capacity-based offloading missing better
// load-to-latency tradeoff opportunities."
//
// The conceptual figure made empirical: sweep offered load on West and
// compare mean latency under (a) Waterfall with a conservative threshold
// (offloads too early, pays network latency needlessly), (b) Waterfall with
// an aggressive threshold (keeps traffic local deep into the queueing
// blow-up), and (c) SLATE's per-load optimum. The two static curves cross
// the optimal curve exactly as the paper sketches: conservative loses at
// low load, aggressive loses at high load.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

ExperimentResult run(double west_rps, PolicyKind policy, double scale) {
  TwoClusterChainParams params;
  params.west_rps = west_rps;
  params.east_rps = 100.0;
  params.rtt = 25e-3;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RunConfig config;
  config.policy = policy;
  config.duration = 40.0;
  config.warmup = 10.0;
  config.seed = 11;
  config.waterfall.threshold_scale = scale;
  return run_experiment(scenario, config);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3", "static conservative/aggressive thresholds vs optimal");
  std::printf("%-10s %18s %18s %14s   (mean latency, ms)\n", "west_load",
              "waterfall-cons.", "waterfall-aggr.", "slate");
  for (double load = 200.0; load <= 700.0 + 1e-9; load += 100.0) {
    const double conservative =
        run(load, PolicyKind::kWaterfall, 0.35).mean_latency() * 1e3;
    const double aggressive =
        run(load, PolicyKind::kWaterfall, 1.04).mean_latency() * 1e3;
    const double slate = run(load, PolicyKind::kSlate, 1.0).mean_latency() * 1e3;
    std::printf("%-10.0f %18.2f %18.2f %14.2f\n", load, conservative,
                aggressive, slate);
    std::printf("data,fig3,%.0f,%.3f,%.3f,%.3f\n", load, conservative,
                aggressive, slate);
  }
  std::printf(
      "\nshape check: the conservative threshold wastes network latency at\n"
      "low-mid load; the aggressive one melts down at high load; SLATE\n"
      "tracks the lower envelope.\n");
  return 0;
}
