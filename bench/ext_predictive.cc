// Extension experiment: predictive traffic engineering under follow-the-sun
// load (paper §5 "Opportunities" — the controller can close its one-period
// actuation lag by solving on where demand is GOING, not where it was).
//
// Two-cluster chain with anti-phase 40 s diurnal sinusoids: each region's
// peak (760 RPS) overruns its local capacity (~500 RPS) while the other
// region troughs (40 RPS), so the right plan is always "spill my peak onto
// your trough" — but the spill must move WITH the sun. The total offered
// load is constant, so any latency difference between arms is purely about
// when the controller rotates the spill, not about how much capacity exists.
//
// Three arms, same data plane, same seed:
//
//   reactive    — stock SLATE: solve on the EWMA of last-period measured
//                 ingress; every plan chases the sinusoid ~2 control
//                 periods late.
//   predictive  — Holt-Winters seasonal forecaster (season = 40 control
//                 periods) learns the cycle online; once the rolling
//                 backtest earns confidence the solver runs on blended
//                 next-period demand.
//   oracle      — hindsight bound: solve on the actual offered load at the
//                 actuation-window midpoint, read from the demand schedule.
//
// Judged on mean/p95 latency over the post-warmup window (warmup covers the
// Holt-Winters two-season initialization), rule churn, and the forecast
// backtest digests. The pinned ordering (tests/forecast_test.cc):
// oracle <= predictive <= reactive, with predictive at least 10% under
// reactive on mean latency.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"
#include "workload/generators.h"

using namespace slate;

namespace {

constexpr double kPeriod = 40.0;    // seconds per diurnal cycle
constexpr double kDuration = 240.0;
constexpr double kWarmup = 150.0;   // 2 seasons (80 s) + confidence ramp

Scenario diurnal_scenario() {
  TwoClusterChainParams params;
  params.west_servers = 1;
  params.east_servers = 1;
  Scenario s = make_two_cluster_chain_scenario(params);
  s.demand = DemandSchedule{};
  DiurnalSpec west;
  west.base = 400.0;
  west.amplitude = 360.0;
  west.period = kPeriod;
  west.end = kDuration + kPeriod;
  west.step = 1.0;
  DiurnalSpec east = west;
  east.phase = kPeriod / 2.0;  // anti-phase: east peaks while west troughs
  add_diurnal(s.demand, ClassId{0}, ClusterId{0}, west);
  add_diurnal(s.demand, ClassId{0}, ClusterId{1}, east);
  return s;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension", "predictive TE: reactive vs forecast vs hindsight oracle");

  const Scenario scenario = diurnal_scenario();

  RunConfig base;
  base.policy = PolicyKind::kSlate;
  base.duration = kDuration;
  base.warmup = kWarmup;
  base.seed = 11;
  base.control_period = 1.0;
  base.timeseries_bucket = 1.0;

  RunConfig predictive = base;
  predictive.slate.forecast.kind = ForecastKind::kHoltWinters;
  predictive.slate.forecast.season =
      static_cast<std::size_t>(kPeriod / base.control_period);
  RunConfig oracle = base;
  oracle.slate.forecast.kind = ForecastKind::kOracle;

  std::vector<GridJob> jobs;
  jobs.push_back({&scenario, base, "reactive"});
  jobs.push_back({&scenario, predictive, "predictive"});
  jobs.push_back({&scenario, oracle, "oracle"});
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  const char* labels[] = {"reactive", "predictive", "oracle"};
  std::printf("%-12s %9s %9s %9s %10s %8s %8s %8s\n", "arm", "mean_ms",
              "p95_ms", "p99_ms", "rule_delta", "solves", "smape", "conf");
  double reactive_mean = 0.0, predictive_mean = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    if (i == 0) reactive_mean = r.mean_latency();
    if (i == 1) predictive_mean = r.mean_latency();
    std::printf("%-12s %9.2f %9.2f %9.2f %10.3f %8llu %8.3f %8.2f\n",
                labels[i], r.mean_latency() * 1e3, r.p95() * 1e3,
                r.p99() * 1e3, r.mean_rule_delta(),
                static_cast<unsigned long long>(r.forecast_solves),
                r.forecast_mean_smape, r.forecast_mean_confidence);
    std::printf("data,predictive,%s,%.4f,%.4f,%.4f,%.4f,%llu,%.4f,%.4f\n",
                labels[i], r.mean_latency() * 1e3, r.p95() * 1e3,
                r.p99() * 1e3, r.mean_rule_delta(),
                static_cast<unsigned long long>(r.forecast_solves),
                r.forecast_mean_smape, r.forecast_mean_confidence);
    for (std::size_t b = 0; b < r.completed_series.size(); ++b) {
      std::printf("data,goodput_series,%s,%.1f,%llu\n", labels[i],
                  static_cast<double>(b) * r.series_bucket,
                  static_cast<unsigned long long>(r.completed_series[b]));
    }
  }
  if (reactive_mean > 0.0) {
    std::printf("data,predictive_vs_reactive,%.4f\n",
                predictive_mean / reactive_mean);
  }
  std::printf(
      "\nreading: the reactive controller EWMAs last-period ingress, so its\n"
      "spill plan rotates a couple control periods behind the sun — at every\n"
      "peak-shift the overloaded region keeps traffic it should already be\n"
      "spilling, queues build, and mean/p95 latency inflates. The seasonal\n"
      "forecaster learns the 40 s cycle during warmup, earns confidence on\n"
      "the rolling backtest, and hands the solver next-period demand: the\n"
      "spill rotates on time and mean latency drops >= 10%%. The oracle, fed\n"
      "the actual future from the schedule, bounds what any forecaster\n"
      "could achieve on this workload.\n");
  return 0;
}
