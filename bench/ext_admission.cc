// Extension experiment: SLO-aware ingress admission control.
//
// Phase 1 (front door vs mid-tree): the ext_metastable burst scenario — a
// ~500 RPS chain offered 420 RPS, then 1500 RPS for ten seconds — run with
// two shedding placements. The mid-tree arm bounds station queues and
// carries deadlines for accounting only (propagate=off), so work that
// expires while queued is still served: the shed happens after the request
// has already burned queue slots and server time across the call tree. The
// front-door arm layers the admission gate at request birth on top of the
// same mid-tree config: excess load is refused before execute_node ever
// runs, as a synchronous fast-fail. The comparison pins the paper's
// robustness claim: shedding at the front door strictly dominates shedding
// mid-tree on wasted server seconds at equal-or-better goodput.
//
// Phase 2 (anti-phase diurnal): two classes (L at 1ms, H at 10x) share one
// worker server, with sinusoidal demand in anti-phase — H peaks exactly
// when L troughs — so the overload rotates between classes twice over the
// run. The adaptation loop retunes each class's bucket once per control
// period from observed SLO attainment and goodput; the max-min fairness
// floor guarantees neither class is starved while the other's peak is
// being clipped. Pinned: p99 SLO attainment under admission beats the
// uncontrolled run for both classes, and every class keeps an admitted
// share of at least its fair floor.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"
#include "workload/generators.h"

using namespace slate;

namespace {

// --- Phase 1: metastable burst, mid-tree vs front-door shedding -----------

constexpr double kBurstStart = 30.0;
constexpr double kBurstEnd = 40.0;

RunConfig burst_config(bool front_door) {
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 70.0;
  config.warmup = 5.0;
  config.seed = 23;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  config.failure.retry_excludes_failed = false;
  // Mid-tree shedding: bounded queues shed at interior stations, and
  // deadlines are carried for accounting only — expired work is served
  // anyway, which is what makes the waste visible. The bound is deep
  // enough (512 jobs ≈ 1s of work) that queued requests can outlive
  // their 0.5s deadline before the shed point is reached.
  config.overload.queue.max_queue = 512;
  config.overload.deadline.enabled = true;
  config.overload.deadline.default_deadline = 0.5;
  config.overload.deadline.propagate = false;
  if (front_door) {
    config.admission.enabled = true;
    config.admission.default_rate = 450.0;
    config.admission.burst = 0.1;
    config.admission.default_slo = 0.5;
    config.admission.target_attainment = 0.9;
    // The chain saturates at ~500 RPS; 420 offered * 1.1 headroom keeps
    // the healthy-cell bucket under capacity so the burst onset cannot
    // tip the chain into the retry spiral before the loop reacts.
    config.admission.headroom = 1.1;
    // Retries amplify any over-admit 3x, so the loop must be able to cut
    // below amplified capacity fast; a shallow floor keeps the door from
    // feeding the spiral at 10% of a 1500 RPS burst.
    config.admission.gain = 0.5;
    config.admission.fair_floor = 0.02;
  }
  return config;
}

void run_front_door_phase() {
  TwoClusterChainParams params;
  params.west_rps = 420.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  const ClassId chain = scenario.app->find_class("chain");
  scenario.demand.add_step(chain, ClusterId{0}, kBurstStart, 1500.0);
  scenario.demand.add_step(chain, ClusterId{0}, kBurstEnd, params.west_rps);

  std::vector<GridJob> jobs;
  jobs.push_back({&scenario, burst_config(false), "mid-tree"});
  jobs.push_back({&scenario, burst_config(true), "front-door"});
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("\nphase 1: 10s burst to 1500 RPS; shed mid-tree vs at the door\n");
  std::printf("%-12s %8s %8s %8s %10s %10s %12s\n", "config", "pre_rps",
              "burst", "post_rps", "shed", "rejected", "wasted_sec");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const char* label = i == 0 ? "mid-tree" : "front-door";
    const double pre = r.goodput_in_window(20.0, kBurstStart);
    const double burst = r.goodput_in_window(32.0, kBurstEnd);
    const double post = r.goodput_in_window(55.0, 70.0);
    std::printf("%-12s %8.1f %8.1f %8.1f %10llu %10llu %12.1f\n", label, pre,
                burst, post, static_cast<unsigned long long>(r.total_shed()),
                static_cast<unsigned long long>(r.admission_rejected),
                r.wasted_server_seconds);
    std::printf("data,admission_front_door,%s,%.2f,%.2f,%.2f,%llu,%llu,%llu,%.2f\n",
                label, pre, burst, post,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.total_shed()),
                static_cast<unsigned long long>(r.admission_rejected),
                r.wasted_server_seconds);
    for (std::size_t b = 0; b < r.completed_series.size(); ++b) {
      std::printf("data,admission_series,%s,%.1f,%llu\n", label,
                  static_cast<double>(b) * r.series_bucket,
                  static_cast<unsigned long long>(r.completed_series[b]));
    }
  }
}

// --- Phase 2: anti-phase diurnal overload, two classes ---------------------

constexpr double kDiurnalPeriod = 40.0;
constexpr double kDuration = 90.0;

Scenario diurnal_scenario() {
  TwoClassParams params;
  Scenario scenario = make_two_class_scenario(params);
  const ClassId light = scenario.app->find_class("L");
  const ClassId heavy = scenario.app->find_class("H");
  const ClusterId west{0};

  // West demand oscillates in anti-phase: H (10x the compute) peaks at
  // t = 30, 70, ... exactly when L troughs. The worker is overloaded on
  // average (~1.2 server-equivalents) and the pressure rotates between
  // classes each half-period.
  DiurnalSpec l;
  l.base = 400.0;
  l.amplitude = 250.0;
  l.period = kDiurnalPeriod;
  l.phase = 0.0;
  l.start = 1.0;
  l.end = kDuration;
  scenario.demand.set_rate(light, west, l.base);
  add_diurnal(scenario.demand, light, west, l);

  DiurnalSpec h = l;
  h.base = 80.0;
  h.amplitude = 50.0;
  h.phase = kDiurnalPeriod / 2.0;  // anti-phase with L
  scenario.demand.set_rate(heavy, west, h.base);
  add_diurnal(scenario.demand, heavy, west, h);
  return scenario;
}

RunConfig diurnal_config(bool admission) {
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = kDuration;
  config.warmup = 10.0;
  config.seed = 31;
  if (admission) {
    config.admission.enabled = true;
    config.admission.default_rate = 400.0;
    config.admission.default_slo = 0.25;
    config.admission.target_attainment = 0.9;
    config.admission.fair_floor = 0.2;
  }
  return config;
}

void run_diurnal_phase() {
  Scenario scenario = diurnal_scenario();
  std::vector<GridJob> jobs;
  jobs.push_back({&scenario, diurnal_config(false), "uncontrolled"});
  jobs.push_back({&scenario, diurnal_config(true), "adaptive"});
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("\nphase 2: anti-phase diurnal overload (L vs 10x-cost H)\n");
  std::printf("%-14s %-5s %10s %10s %10s %12s %10s\n", "config", "class",
              "admitted", "rejected", "share", "attainment", "p99_ms");
  const char* class_names[] = {"L", "H"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const char* label = i == 0 ? "uncontrolled" : "adaptive";
    for (std::size_t k = 0; k < r.e2e_by_class.size(); ++k) {
      const std::uint64_t adm = i == 0 ? r.e2e_by_class[k].count()
                                       : r.admission_admitted_by_class[k];
      const std::uint64_t rej =
          i == 0 ? 0 : r.admission_rejected_by_class[k];
      const double share =
          adm + rej > 0 ? static_cast<double>(adm) /
                              static_cast<double>(adm + rej)
                        : 1.0;
      const std::uint64_t done = r.e2e_by_class[k].count();
      const double attainment =
          done > 0 ? static_cast<double>(r.slo_hits_by_class[k]) /
                         static_cast<double>(done)
                   : 0.0;
      const double p99 = r.e2e_by_class[k].quantile(0.99) * 1e3;
      std::printf("%-14s %-5s %10llu %10llu %10.2f %12.3f %10.2f\n", label,
                  class_names[k], static_cast<unsigned long long>(adm),
                  static_cast<unsigned long long>(rej), share, attainment, p99);
      std::printf("data,admission_diurnal,%s,%s,%llu,%llu,%.4f,%.4f,%.3f\n",
                  label, class_names[k], static_cast<unsigned long long>(adm),
                  static_cast<unsigned long long>(rej), share, attainment,
                  p99);
    }
    if (i == 1) {
      std::printf(
          "adaptation: %llu rounds, %llu raises / %llu cuts / %llu floor "
          "raises\n",
          static_cast<unsigned long long>(r.admission_adapt_rounds),
          static_cast<unsigned long long>(r.admission_rate_raises),
          static_cast<unsigned long long>(r.admission_rate_cuts),
          static_cast<unsigned long long>(r.admission_floor_raises));
    }
  }
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "SLO-aware ingress admission: front-door vs mid-tree "
                      "shedding + adaptive per-class limits");
  run_front_door_phase();
  run_diurnal_phase();
  std::printf(
      "\nreading: the mid-tree arm sheds the burst only after requests have\n"
      "queued at interior stations, and without deadline propagation the\n"
      "expired survivors are served anyway — servers burn seconds on work\n"
      "nobody is waiting for. The front-door arm refuses the same excess at\n"
      "request birth for the cost of a synchronous fast-fail: strictly less\n"
      "wasted server time at equal-or-better goodput. In the diurnal phase\n"
      "the adaptation loop clips whichever class is currently overrunning\n"
      "its SLO while the fairness floor keeps the other class's admitted\n"
      "share above its guaranteed minimum — attainment recovers for both\n"
      "classes without starving either.\n");
  return 0;
}
