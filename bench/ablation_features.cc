// Ablation: the design choices called out in DESIGN.md.
//
//   * fractional vs all-or-nothing rules (LP vs MILP integer mode);
//   * queue-cost PWL resolution (tangent count);
//   * cost-awareness on the multi-hop scenario (cost_weight 0 vs 300);
//   * control period (reaction speed vs optimizer work).
//
// All 13 runs are independent, so they go through the parallel grid as one
// batch and are printed section by section afterwards.
#include <cstdio>
#include <deque>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

RunConfig base_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 51;
  return config;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "SLATE design choices");

  std::deque<Scenario> scenarios;
  std::vector<GridJob> jobs;

  // [1] fractional vs all-or-nothing (6a setup).
  {
    TwoClusterChainParams params;
    params.west_rps = 700.0;
    scenarios.push_back(make_two_cluster_chain_scenario(params));
    for (bool integer : {false, true}) {
      RunConfig config = base_config();
      config.slate.optimizer.integer_routes = integer;
      jobs.push_back({&scenarios.back(), config,
                      integer ? "all-or-nothing" : "fractional"});
    }
  }
  // [2] PWL tangent count.
  const std::size_t tangent_counts[] = {3, 6, 14, 28};
  {
    TwoClusterChainParams params;
    params.west_rps = 800.0;
    scenarios.push_back(make_two_cluster_chain_scenario(params));
    for (std::size_t tangents : tangent_counts) {
      RunConfig config = base_config();
      config.slate.optimizer.tangent_count = tangents;
      jobs.push_back({&scenarios.back(), config, "tangents"});
    }
  }
  // [3] cost-awareness (6c setup).
  const double cost_weights[] = {0.0, 30.0, 300.0};
  scenarios.push_back(make_anomaly_scenario({}));
  for (double weight : cost_weights) {
    RunConfig config = base_config();
    config.slate.optimizer.cost_weight = weight;
    jobs.push_back({&scenarios.back(), config, "cost_weight"});
  }
  // [4] control period vs burst reaction (load step at t=25s).
  const double periods[] = {0.5, 1.0, 2.0, 5.0};
  {
    TwoClusterChainParams params;
    params.west_rps = 200.0;
    Scenario scenario = make_two_cluster_chain_scenario(params);
    scenario.demand.add_step(ClassId{0}, ClusterId{0}, 25.0, 800.0);
    scenarios.push_back(std::move(scenario));
    for (double period : periods) {
      RunConfig config = base_config();
      config.control_period = period;
      config.warmup = 25.0;  // measure from the burst onward
      jobs.push_back({&scenarios.back(), config, "control_period"});
    }
  }

  const std::vector<ExperimentResult> results = bench::run_grid(jobs);
  std::size_t at = 0;

  std::printf("\n[1] fractional vs all-or-nothing routing rules (6a setup)\n");
  for (bool integer : {false, true}) {
    const ExperimentResult& r = results[at++];
    std::printf("  %-18s mean %8.2f ms   p99 %8.2f ms\n",
                integer ? "all-or-nothing" : "fractional",
                r.mean_latency() * 1e3, r.p99() * 1e3);
    std::printf("data,rules,%s,%.3f,%.3f\n", integer ? "integer" : "fractional",
                r.mean_latency() * 1e3, r.p99() * 1e3);
  }

  std::printf("\n[2] queue-cost PWL tangent count (approximation quality)\n");
  for (std::size_t tangents : tangent_counts) {
    const ExperimentResult& r = results[at++];
    std::printf("  tangents %-8zu mean %8.2f ms   p99 %8.2f ms\n", tangents,
                r.mean_latency() * 1e3, r.p99() * 1e3);
    std::printf("data,tangents,%zu,%.3f,%.3f\n", tangents,
                r.mean_latency() * 1e3, r.p99() * 1e3);
  }

  std::printf("\n[3] cost-awareness on the multi-hop scenario (6c setup)\n");
  for (double weight : cost_weights) {
    const ExperimentResult& r = results[at++];
    std::printf("  cost_weight %-8.0f mean %8.2f ms   egress $%.5f\n", weight,
                r.mean_latency() * 1e3, r.egress_cost_dollars);
    std::printf("data,cost_weight,%.0f,%.3f,%.5f\n", weight,
                r.mean_latency() * 1e3, r.egress_cost_dollars);
  }

  std::printf("\n[4] control period vs burst reaction (load step at t=25s)\n");
  for (double period : periods) {
    const ExperimentResult& r = results[at++];
    std::printf("  period %-6.1fs mean %8.2f ms   p99 %8.2f ms\n", period,
                r.mean_latency() * 1e3, r.p99() * 1e3);
    std::printf("data,period,%.1f,%.3f,%.3f\n", period,
                r.mean_latency() * 1e3, r.p99() * 1e3);
  }
  return 0;
}
