// Ablation: the design choices called out in DESIGN.md.
//
//   * fractional vs all-or-nothing rules (LP vs MILP integer mode);
//   * queue-cost PWL resolution (tangent count);
//   * cost-awareness on the multi-hop scenario (cost_weight 0 vs 300);
//   * control period (reaction speed vs optimizer work).
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

RunConfig base_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 51;
  return config;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "SLATE design choices");

  {
    std::printf("\n[1] fractional vs all-or-nothing routing rules (6a setup)\n");
    TwoClusterChainParams params;
    params.west_rps = 700.0;
    const Scenario scenario = make_two_cluster_chain_scenario(params);
    for (bool integer : {false, true}) {
      RunConfig config = base_config();
      config.slate.optimizer.integer_routes = integer;
      const ExperimentResult r = run_experiment(scenario, config);
      std::printf("  %-18s mean %8.2f ms   p99 %8.2f ms\n",
                  integer ? "all-or-nothing" : "fractional",
                  r.mean_latency() * 1e3, r.p99() * 1e3);
      std::printf("data,rules,%s,%.3f,%.3f\n",
                  integer ? "integer" : "fractional", r.mean_latency() * 1e3,
                  r.p99() * 1e3);
    }
  }

  {
    std::printf("\n[2] queue-cost PWL tangent count (approximation quality)\n");
    TwoClusterChainParams params;
    params.west_rps = 800.0;
    const Scenario scenario = make_two_cluster_chain_scenario(params);
    for (std::size_t tangents : {3u, 6u, 14u, 28u}) {
      RunConfig config = base_config();
      config.slate.optimizer.tangent_count = tangents;
      const ExperimentResult r = run_experiment(scenario, config);
      std::printf("  tangents %-8zu mean %8.2f ms   p99 %8.2f ms\n", tangents,
                  r.mean_latency() * 1e3, r.p99() * 1e3);
      std::printf("data,tangents,%zu,%.3f,%.3f\n", tangents,
                  r.mean_latency() * 1e3, r.p99() * 1e3);
    }
  }

  {
    std::printf("\n[3] cost-awareness on the multi-hop scenario (6c setup)\n");
    const Scenario scenario = make_anomaly_scenario({});
    for (double weight : {0.0, 30.0, 300.0}) {
      RunConfig config = base_config();
      config.slate.optimizer.cost_weight = weight;
      const ExperimentResult r = run_experiment(scenario, config);
      std::printf("  cost_weight %-8.0f mean %8.2f ms   egress $%.5f\n", weight,
                  r.mean_latency() * 1e3, r.egress_cost_dollars);
      std::printf("data,cost_weight,%.0f,%.3f,%.5f\n", weight,
                  r.mean_latency() * 1e3, r.egress_cost_dollars);
    }
  }

  {
    std::printf("\n[4] control period vs burst reaction (load step at t=25s)\n");
    TwoClusterChainParams params;
    params.west_rps = 200.0;
    for (double period : {0.5, 1.0, 2.0, 5.0}) {
      Scenario scenario = make_two_cluster_chain_scenario(params);
      scenario.demand.add_step(ClassId{0}, ClusterId{0}, 25.0, 800.0);
      RunConfig config = base_config();
      config.control_period = period;
      config.warmup = 25.0;  // measure from the burst onward
      const ExperimentResult r = run_experiment(scenario, config);
      std::printf("  period %-6.1fs mean %8.2f ms   p99 %8.2f ms\n", period,
                  r.mean_latency() * 1e3, r.p99() * 1e3);
      std::printf("data,period,%.1f,%.3f,%.3f\n", period,
                  r.mean_latency() * 1e3, r.p99() * 1e3);
    }
  }
  return 0;
}
