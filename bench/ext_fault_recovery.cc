// Extension experiment: goodput under a cluster outage and time to
// reconverge (paper §4 "Challenges" — the control plane must react to
// failures, not just load).
//
// Two-cluster chain with West overloaded (600 > 475 RPS capacity), so the
// routing policy must spill onto East to serve everyone. East then dies
// for 10 seconds mid-run. The data plane runs full failure semantics
// (timeouts, budgeted retries that avoid the failed cluster), and we watch
// the whole-run goodput timeseries:
//
//   pre      — goodput in [30, 40), before the fault
//   during   — goodput in [42, 49), the outage steady state
//   post     — goodput in [53, 60), after East returns
//   reconverge — seconds after the fault clears (t=50) until goodput holds
//                >= 95% of pre for 3 consecutive 1-second buckets
//
// SLATE's global controller sees East's report vanish, decays its demand
// estimate, and reroutes within a few control periods; Waterfall's greedy
// spill has no liveness signal of its own and leans on the data plane's
// retries alone.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

constexpr double kFaultStart = 40.0;
constexpr double kFaultEnd = 50.0;

struct Row {
  ExperimentResult r;
  double pre, during_fault, post;
  double reconverge;  // seconds after kFaultEnd; <0 = never within the run
};

// First time after the fault clears at which goodput holds >= 95% of the
// pre-fault level for `hold` consecutive buckets, relative to kFaultEnd.
double time_to_reconverge(const ExperimentResult& r, double pre,
                          std::size_t hold = 3) {
  const double bucket = r.series_bucket;
  if (bucket <= 0.0 || pre <= 0.0) return -1.0;
  const double target = 0.95 * pre * bucket;  // completions per bucket
  std::size_t streak = 0;
  for (std::size_t i = static_cast<std::size_t>(kFaultEnd / bucket);
       i < r.completed_series.size(); ++i) {
    streak = static_cast<double>(r.completed_series[i]) >= target ? streak + 1
                                                                  : 0;
    if (streak == hold) {
      return (static_cast<double>(i + 1 - hold)) * bucket - kFaultEnd;
    }
  }
  return -1.0;
}

Row summarize(ExperimentResult r) {
  Row row;
  row.r = std::move(r);
  row.pre = row.r.goodput_in_window(30.0, kFaultStart);
  row.during_fault = row.r.goodput_in_window(42.0, 49.0);
  row.post = row.r.goodput_in_window(53.0, 60.0);
  row.reconverge = time_to_reconverge(row.r, row.pre);
  return row;
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "goodput under a 10s cluster outage + reconvergence");
  const PolicyKind policies[] = {PolicyKind::kSlate, PolicyKind::kWaterfall,
                                 PolicyKind::kLocalityFailover};

  TwoClusterChainParams params;
  params.west_rps = 600.0;
  params.east_rps = 100.0;
  Scenario scenario = make_two_cluster_chain_scenario(params);
  scenario.faults.cluster_outage(ClusterId{1}, kFaultStart,
                                 kFaultEnd - kFaultStart);

  // One grid job per policy, same scenario and seed.
  std::vector<GridJob> jobs;
  for (PolicyKind policy : policies) {
    RunConfig config;
    config.policy = policy;
    config.duration = 70.0;
    config.warmup = 10.0;
    config.seed = 17;
    config.control_period = 1.0;
    config.timeseries_bucket = 1.0;
    config.failure.enabled = true;
    config.failure.call_timeout = 0.5;
    config.failure.max_retries = 2;
    jobs.push_back({&scenario, config, to_string(policy)});
  }
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("%-18s %9s %9s %9s %11s %8s %8s %8s\n", "policy", "pre_rps",
              "fault_rps", "post_rps", "reconverge", "errors", "retries",
              "timeouts");
  for (ExperimentResult& result : results) {
    const Row row = summarize(std::move(result));
    char reconverge[32];
    if (row.reconverge >= 0.0) {
      std::snprintf(reconverge, sizeof(reconverge), "%.0fs", row.reconverge);
    } else {
      std::snprintf(reconverge, sizeof(reconverge), "never");
    }
    std::printf("%-18s %9.1f %9.1f %9.1f %11s %8llu %8llu %8llu\n",
                row.r.policy.c_str(), row.pre, row.during_fault, row.post,
                reconverge, static_cast<unsigned long long>(row.r.failed),
                static_cast<unsigned long long>(row.r.call_retries),
                static_cast<unsigned long long>(row.r.call_timeouts));
    std::printf("data,fault_recovery,%s,%.2f,%.2f,%.2f,%.2f,%llu,%llu\n",
                row.r.policy.c_str(), row.pre, row.during_fault, row.post,
                row.reconverge, static_cast<unsigned long long>(row.r.failed),
                static_cast<unsigned long long>(row.r.call_retries));
    for (std::size_t i = 0; i < row.r.completed_series.size(); ++i) {
      std::printf("data,goodput_series,%s,%.1f,%llu\n", row.r.policy.c_str(),
                  static_cast<double>(i) * row.r.series_bucket,
                  static_cast<unsigned long long>(row.r.completed_series[i]));
    }
  }
  std::printf(
      "\nreading: before and after the outage SLATE spills West's overload\n"
      "onto East and lands nearly all 700 RPS. During the outage West alone\n"
      "(475 RPS capacity) faces the full offered load: SLATE has no\n"
      "admission control, so retries re-aim the spill at the saturated\n"
      "survivor, queueing delay blows past the 0.5s deadline, and timed-out\n"
      "work still burns server time — goodput collapses metastably until\n"
      "East returns, then reconverges within a few control periods.\n"
      "Waterfall fails the spill fast on the dead cluster's rejections and\n"
      "keeps West's admitted load at capacity, degrading gracefully instead\n"
      "of collapsing — the flip side of controller-driven rebalancing.\n");
  return 0;
}
