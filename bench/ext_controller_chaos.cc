// Extension experiment: control-plane hardening under byzantine telemetry
// and a solver outage (paper §4 "Challenges" — the controller itself is a
// failure domain, not just the clusters it manages).
//
// Two-cluster chain with West overloaded (800 > 475 RPS capacity), so SLATE
// must spill onto East to serve everyone. Mid-run the control plane is
// attacked twice:
//
//   [25, 75)  West's reports turn byzantine: ingress rates, latencies, and
//             utilizations spiked 8x, zeroed, truncated, or negated before they reach
//             the global controller. West is the overloaded cluster, so its
//             demand signal is exactly the one the spill plan hangs on: a
//             zeroed report stops the spill (West melts down locally), a
//             spiked one over-rotates it.
//   [35, 45)  the optimizer is down entirely (every solve attempt throws).
//
// Three arms, same data plane, same seed:
//
//   fault-free        — no chaos; the goodput ceiling.
//   chaos-unguarded   — chaos with the guard stack disarmed: poisoned
//                       telemetry drives the demand estimate, rules flap,
//                       solver outage freezes whatever garbage was last
//                       pushed.
//   chaos-guarded     — telemetry admission + solver fallback ladder +
//                       damped canary rollout armed (scenario defaults).
//
// Judged on goodput in the chaos window, rule churn (mean successive-push
// L1 distance — flapping shows up as a large mean), and the guard counters.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

constexpr double kCorruptStart = 25.0;
constexpr double kCorruptEnd = 75.0;
constexpr double kSolverStart = 35.0;
constexpr double kSolverEnd = 45.0;

struct Row {
  ExperimentResult r;
  double pre, chaos, post;
};

Row summarize(ExperimentResult r) {
  Row row;
  row.r = std::move(r);
  row.pre = row.r.goodput_in_window(15.0, kCorruptStart);
  row.chaos = row.r.goodput_in_window(kCorruptStart + 2.0, kCorruptEnd);
  row.post = row.r.goodput_in_window(kCorruptEnd + 3.0, 90.0);
  return row;
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "controller chaos: byzantine telemetry + solver outage");

  TwoClusterChainParams params;
  params.west_rps = 800.0;
  params.east_rps = 100.0;

  // Arm 0: the fault-free ceiling.
  Scenario clean = make_two_cluster_chain_scenario(params);

  // Arms 1-2: corrupted West telemetry overlapping a global solver outage.
  // The guard directives ride on the scenario; the unguarded arm disarms
  // them with ignore_scenario_guard (slate_cli --no-guard).
  Scenario chaos = make_two_cluster_chain_scenario(params);
  chaos.faults.telemetry_corruption(ClusterId{0}, kCorruptStart,
                                    kCorruptEnd - kCorruptStart, 8.0);
  chaos.faults.solver_outage(kSolverStart, kSolverEnd - kSolverStart);
  chaos.guard.admission.enabled = true;
  chaos.guard.solver.enabled = true;
  chaos.guard.rollout.enabled = true;

  RunConfig base;
  base.policy = PolicyKind::kSlate;
  base.duration = 90.0;
  base.warmup = 10.0;
  base.seed = 17;
  base.control_period = 1.0;
  base.timeseries_bucket = 1.0;
  base.failure.enabled = true;
  base.failure.call_timeout = 0.5;
  base.failure.max_retries = 2;

  std::vector<GridJob> jobs;
  jobs.push_back({&clean, base, "fault-free"});
  RunConfig unguarded = base;
  unguarded.ignore_scenario_guard = true;
  jobs.push_back({&chaos, unguarded, "chaos-unguarded"});
  jobs.push_back({&chaos, base, "chaos-guarded"});
  std::vector<ExperimentResult> results = bench::run_grid(jobs);

  const char* labels[] = {"fault-free", "chaos-unguarded", "chaos-guarded"};
  std::printf("%-18s %9s %9s %9s %10s %9s %9s %9s\n", "arm", "pre_rps",
              "chaos_rps", "post_rps", "rule_delta", "fallback", "rollback",
              "rejects");
  double clean_chaos = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Row row = summarize(std::move(results[i]));
    if (i == 0) clean_chaos = row.chaos;
    std::printf("%-18s %9.1f %9.1f %9.1f %10.3f %9llu %9llu %9llu\n",
                labels[i], row.pre, row.chaos, row.post,
                row.r.mean_rule_delta(),
                static_cast<unsigned long long>(row.r.solver_fallbacks),
                static_cast<unsigned long long>(row.r.rollout_rollbacks),
                static_cast<unsigned long long>(row.r.guard_fields_rejected));
    std::printf(
        "data,controller_chaos,%s,%.2f,%.2f,%.2f,%.4f,%llu,%llu,%llu,%llu,"
        "%llu,%llu\n",
        labels[i], row.pre, row.chaos, row.post, row.r.mean_rule_delta(),
        static_cast<unsigned long long>(row.r.solver_fallbacks),
        static_cast<unsigned long long>(row.r.solver_holds),
        static_cast<unsigned long long>(row.r.rollout_rollbacks),
        static_cast<unsigned long long>(row.r.rollout_flap_freezes),
        static_cast<unsigned long long>(row.r.guard_fields_rejected),
        static_cast<unsigned long long>(row.r.guard_spikes_clamped));
    for (std::size_t b = 0; b < row.r.completed_series.size(); ++b) {
      std::printf("data,goodput_series,%s,%.1f,%llu\n", labels[i],
                  static_cast<double>(b) * row.r.series_bucket,
                  static_cast<unsigned long long>(row.r.completed_series[b]));
    }
    if (i == 2 && clean_chaos > 0.0) {
      std::printf("data,guarded_vs_clean,%.4f\n", row.chaos / clean_chaos);
    }
  }
  std::printf(
      "\nreading: unguarded, West's spiked/zeroed/negated reports whipsaw\n"
      "the demand estimate — successive rule pushes move large L1 distances\n"
      "(flapping), traffic sloshes between clusters, and goodput drops well\n"
      "below the fault-free ceiling; the solver outage then freezes whatever\n"
      "garbage plan was live. Guarded, the admission gate rejects poisoned\n"
      "fields and clamps MAD spikes (interpolating last-good values), the\n"
      "fallback ladder rides the outage on a capacity split, and the damped\n"
      "canary rollout keeps successive pushes small — goodput stays within a\n"
      "few percent of fault-free.\n");
  return 0;
}
