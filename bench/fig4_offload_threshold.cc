// Figure 4: "Empirical cross-cluster routing threshold calculated by SLATE
// over different network latency and loads."
//
// Two clusters (West variable load, East pinned at 100 RPS), the linear
// 3-service chain, inter-cluster RTT in {5, 25, 50} ms. For each West load
// we run SLATE's optimizer (with the ground-truth latency model, as in the
// paper's controlled experiment) and report how many RPS it keeps local at
// the first routable hop — the "threshold". The reference line is 100%
// local serving (threshold = offered load).
//
// Expected shape (paper): all curves track the 100%-local line at low load,
// peel off as queueing at West exceeds the cost of crossing the network —
// later for higher network latency — and flatten near West's capacity.
#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

// RPS kept local at the svc-1 hop for West traffic, according to the
// optimizer's rules.
double local_threshold(double west_rps, double rtt) {
  TwoClusterChainParams params;
  params.west_rps = west_rps;
  params.east_rps = 100.0;
  params.rtt = rtt;
  const Scenario scenario = make_two_cluster_chain_scenario(params);

  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(*scenario.app, 2);
  FlatMatrix<double> demand(1, 2, 0.0);
  demand(0, 0) = params.west_rps;
  demand(0, 1) = params.east_rps;
  const OptimizerResult result = optimizer.optimize(model, demand);
  if (!result.ok()) return -1.0;
  const RouteWeights* rule = result.rules->find(ClassId{0}, 1, ClusterId{0});
  const double local = rule != nullptr ? rule->weight_for(ClusterId{0}) : 1.0;
  return local * west_rps;
}

}  // namespace

int main() {
  bench::print_header("Figure 4",
                      "optimal local-serving threshold vs load and RTT");
  const double rtts[] = {5e-3, 25e-3, 50e-3};

  std::printf("%-12s %14s %14s %14s %14s\n", "west_load", "100%-local",
              "rtt=5ms", "rtt=25ms", "rtt=50ms");
  for (double load = 100.0; load <= 1000.0 + 1e-9; load += 100.0) {
    std::printf("%-12.0f %14.0f", load, load);
    for (double rtt : rtts) {
      const double threshold = local_threshold(load, rtt);
      std::printf(" %14.1f", threshold);
      std::printf("");
    }
    std::printf("\n");
    for (double rtt : rtts) {
      std::printf("data,threshold,%.0f,%.0f,%.1f\n", rtt * 1e3, load,
                  local_threshold(load, rtt));
    }
  }
  std::printf(
      "\nshape check: thresholds track offered load while West has headroom,\n"
      "peel off earlier for lower RTT, and flatten near West capacity "
      "(~475 RPS).\n");
  return 0;
}
