// Extension experiment: the scalability frontier (paper §5).
//
// Exact LP (two-phase simplex over the full formulation) versus the
// marginal-cost descent heuristic, across growing deployment sizes:
// wall-clock solve time and predicted mean latency of the produced plan.
// The paper asks for seconds-scale reaction on large deployments; this
// quantifies what the heuristic buys and what it costs in plan quality.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/fast_optimizer.h"
#include "core/optimizer.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

struct Measurement {
  double millis = 0.0;
  double predicted_latency_ms = 0.0;
  bool ok = false;
};

template <typename Optimizer>
Measurement measure(const Optimizer& optimizer, const LatencyModel& model,
                    const FlatMatrix<double>& demand, int repeats) {
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  OptimizerResult result;
  for (int i = 0; i < repeats; ++i) {
    result = optimizer.optimize(model, demand);
  }
  const auto stop = std::chrono::steady_clock::now();
  m.millis = std::chrono::duration<double, std::milli>(stop - start).count() /
             repeats;
  m.predicted_latency_ms = result.predicted_mean_latency * 1e3;
  m.ok = result.ok() || result.status == LpStatus::kIterationLimit;
  return m;
}

}  // namespace

int main() {
  bench::print_header("Extension", "exact LP vs marginal-cost descent (§5)");
  std::printf("%-28s | %12s %12s | %12s %12s | %8s\n", "instance", "lp ms",
              "lp latency", "fast ms", "fast latency", "gap");

  struct Size {
    std::size_t clusters;
    std::size_t chain;
  };
  for (const Size size : {Size{2, 3}, Size{4, 3}, Size{8, 3}, Size{4, 10},
                          Size{8, 10}, Size{12, 6}}) {
    LinearChainOptions app_options;
    app_options.chain_length = size.chain;
    Scenario scenario = make_uniform_scenario(
        "scale", make_linear_chain_app(app_options),
        make_line_topology(size.clusters, 20e-3), 1);
    FlatMatrix<double> demand(1, size.clusters, 0.0);
    // Alternate hot/cold clusters so there is real routing work to do.
    for (std::size_t c = 0; c < size.clusters; ++c) {
      demand(0, c) = (c % 2 == 0) ? 700.0 : 100.0;
    }
    const LatencyModel model =
        LatencyModel::from_application(*scenario.app, size.clusters);

    RouteOptimizer exact(*scenario.app, *scenario.deployment,
                         *scenario.topology);
    FastRouteOptimizer fast(*scenario.app, *scenario.deployment,
                            *scenario.topology);
    const int repeats = size.clusters * size.chain <= 24 ? 5 : 2;
    const Measurement lp = measure(exact, model, demand, repeats);
    const Measurement descent = measure(fast, model, demand, repeats);

    char label[64];
    std::snprintf(label, sizeof(label), "%zu clusters x %zu services",
                  size.clusters, size.chain + 1);
    std::printf("%-28s | %10.2fms %10.2fms | %10.2fms %10.2fms | %7.1f%%\n",
                label, lp.millis, lp.predicted_latency_ms, descent.millis,
                descent.predicted_latency_ms,
                100.0 * (descent.predicted_latency_ms - lp.predicted_latency_ms) /
                    lp.predicted_latency_ms);
    std::printf("data,fastopt,%zu,%zu,%.3f,%.3f,%.3f,%.3f\n", size.clusters,
                size.chain, lp.millis, lp.predicted_latency_ms, descent.millis,
                descent.predicted_latency_ms);
  }
  std::printf(
      "\nreading: descent tracks the LP's plan quality within a few percent\n"
      "while its solve time grows polynomially-but-gently (no tableau), the\n"
      "direction §5 suggests for planet-scale deployments.\n");
  return 0;
}
