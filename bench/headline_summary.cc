// Headline numbers (abstract / §1): "SLATE outperforms the state-of-the-art
// global load balancing approach by up to 3.5x in average latency and
// reduces egress bandwidth cost by up to 11.6x."
//
// Reproduces the "up to" by sweeping the evaluation scenarios and reporting
// the per-scenario and maximum ratios of Waterfall (or locality failover,
// whichever the paper's §4 section uses as the baseline) to SLATE.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

struct Row {
  const char* name;
  double latency_ratio;
  double egress_cost_ratio;
};

Row run_pair(const char* name, const Scenario& scenario,
             PolicyKind baseline, double slate_cost_weight = 1.0) {
  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 33;

  config.policy = baseline;
  const ExperimentResult base = run_experiment(scenario, config);
  config.policy = PolicyKind::kSlate;
  config.slate.optimizer.cost_weight = slate_cost_weight;
  const ExperimentResult slate = run_experiment(scenario, config);

  Row row;
  row.name = name;
  row.latency_ratio = base.mean_latency() / slate.mean_latency();
  row.egress_cost_ratio =
      slate.egress_cost_dollars > 0.0
          ? base.egress_cost_dollars / slate.egress_cost_dollars
          : 0.0;
  return row;
}

}  // namespace

int main() {
  bench::print_header("Headline", "max latency and egress-cost improvements");

  std::vector<Row> rows;

  {
    TwoClusterChainParams params;
    params.west_rps = 800.0;
    rows.push_back(run_pair("6a how-much", make_two_cluster_chain_scenario(params),
                            PolicyKind::kWaterfall));
  }
  {
    TwoClusterChainParams params;
    params.west_rps = 550.0;  // just past capacity: aggressive threshold hurts most
    rows.push_back(run_pair("6a near-capacity",
                            make_two_cluster_chain_scenario(params),
                            PolicyKind::kWaterfall));
  }
  rows.push_back(run_pair("6b which-cluster", make_gcp_chain_scenario({}),
                          PolicyKind::kWaterfall));
  rows.push_back(run_pair("6c multi-hop", make_anomaly_scenario({}),
                          PolicyKind::kLocalityFailover, 300.0));
  rows.push_back(run_pair("6d traffic-classes", make_two_class_scenario({}),
                          PolicyKind::kWaterfall));

  std::printf("%-20s %18s %18s\n", "scenario", "latency ratio",
              "egress-cost ratio");
  double max_latency = 0.0, max_cost = 0.0;
  for (const auto& row : rows) {
    std::printf("%-20s %17.2fx %17.2fx\n", row.name, row.latency_ratio,
                row.egress_cost_ratio);
    std::printf("data,headline,%s,%.3f,%.3f\n", row.name, row.latency_ratio,
                row.egress_cost_ratio);
    max_latency = std::max(max_latency, row.latency_ratio);
    max_cost = std::max(max_cost, row.egress_cost_ratio);
  }
  std::printf("\nmax latency improvement:     %.1fx  (paper: up to 3.5x)\n",
              max_latency);
  std::printf("max egress cost improvement: %.1fx  (paper: up to 11.6x)\n",
              max_cost);
  return 0;
}
