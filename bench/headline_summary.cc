// Headline numbers (abstract / §1): "SLATE outperforms the state-of-the-art
// global load balancing approach by up to 3.5x in average latency and
// reduces egress bandwidth cost by up to 11.6x."
//
// Reproduces the "up to" by sweeping the evaluation scenarios and reporting
// the per-scenario and maximum ratios of Waterfall (or locality failover,
// whichever the paper's §4 section uses as the baseline) to SLATE.
//
// All (scenario, policy) runs are independent, so they fan out across the
// parallel experiment grid; results are identical to serial execution.
#include <algorithm>
#include <cstdio>
#include <deque>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

struct Pair {
  const char* name;
  PolicyKind baseline;
  double slate_cost_weight;
};

}  // namespace

int main() {
  bench::print_header("Headline", "max latency and egress-cost improvements");

  // Scenarios live in a deque: the grid holds pointers into it.
  std::deque<Scenario> scenarios;
  std::vector<Pair> pairs;

  {
    TwoClusterChainParams params;
    params.west_rps = 800.0;
    scenarios.push_back(make_two_cluster_chain_scenario(params));
    pairs.push_back({"6a how-much", PolicyKind::kWaterfall, 1.0});
  }
  {
    TwoClusterChainParams params;
    params.west_rps = 550.0;  // just past capacity: aggressive threshold hurts most
    scenarios.push_back(make_two_cluster_chain_scenario(params));
    pairs.push_back({"6a near-capacity", PolicyKind::kWaterfall, 1.0});
  }
  scenarios.push_back(make_gcp_chain_scenario({}));
  pairs.push_back({"6b which-cluster", PolicyKind::kWaterfall, 1.0});
  scenarios.push_back(make_anomaly_scenario({}));
  pairs.push_back({"6c multi-hop", PolicyKind::kLocalityFailover, 300.0});
  scenarios.push_back(make_two_class_scenario({}));
  pairs.push_back({"6d traffic-classes", PolicyKind::kWaterfall, 1.0});

  // Two jobs per scenario: baseline then SLATE.
  std::vector<GridJob> jobs;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    RunConfig config;
    config.duration = 60.0;
    config.warmup = 15.0;
    config.seed = 33;

    config.policy = pairs[i].baseline;
    jobs.push_back({&scenarios[i], config, pairs[i].name});
    config.policy = PolicyKind::kSlate;
    config.slate.optimizer.cost_weight = pairs[i].slate_cost_weight;
    jobs.push_back({&scenarios[i], config, pairs[i].name});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("%-20s %18s %18s\n", "scenario", "latency ratio",
              "egress-cost ratio");
  double max_latency = 0.0, max_cost = 0.0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const ExperimentResult& base = results[2 * i];
    const ExperimentResult& slate = results[2 * i + 1];
    const double latency_ratio = base.mean_latency() / slate.mean_latency();
    const double cost_ratio =
        slate.egress_cost_dollars > 0.0
            ? base.egress_cost_dollars / slate.egress_cost_dollars
            : 0.0;
    std::printf("%-20s %17.2fx %17.2fx\n", pairs[i].name, latency_ratio,
                cost_ratio);
    std::printf("data,headline,%s,%.3f,%.3f\n", pairs[i].name, latency_ratio,
                cost_ratio);
    max_latency = std::max(max_latency, latency_ratio);
    max_cost = std::max(max_cost, cost_ratio);
  }
  std::printf("\nmax latency improvement:     %.1fx  (paper: up to 3.5x)\n",
              max_latency);
  std::printf("max egress cost improvement: %.1fx  (paper: up to 11.6x)\n",
              max_cost);
  return 0;
}
