// Microbenchmark of the simulation engine's hot path.
//
// Runs representative end-to-end scenarios and reports raw engine
// throughput (simulator events per wall-clock second) and allocation
// pressure (heap allocations per simulated request / per event) via a
// counting global operator new. Emits BENCH_simulator.json so the perf
// trajectory is tracked from PR to PR:
//
//   $ ./bench/micro_simulator [output.json]
//
// The routing execution logic "should be simple and heavily optimized since
// it is in the critical path of request processing" (paper §3.1) — this is
// the bench that keeps the engine honest about it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"
#include "topogen/topogen.h"
#include "workload/generators.h"

// --- Counting allocator hook ------------------------------------------------
//
// Global replacement of operator new/delete for this binary only. Relaxed
// atomics: the engine under test is single-threaded; the counter only needs
// to not tear.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace slate;

namespace {

struct Case {
  const char* name;
  Scenario scenario;
  RunConfig config;
};

struct Measurement {
  const char* name;
  const char* policy;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1e3) : 0.0;
  }
  [[nodiscard]] double allocs_per_request() const {
    return requests > 0
               ? static_cast<double>(allocs) / static_cast<double>(requests)
               : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return events > 0
               ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0.0;
  }
};

// Measured passes per case; the reported row is the pass with the median
// wall time (a full Measurement from one real pass, so events/allocs stay
// mutually consistent — no cross-pass averaging).
constexpr int kRepeats = 5;

Measurement run_case(const char* name, const Scenario& scenario,
                     const RunConfig& config) {
  // Warm the scenario once (first-touch allocations: model fitting, rule
  // tables, station setup) so the measured passes reflect steady state.
  {
    RunConfig warm = config;
    warm.duration = std::min(config.duration, config.warmup + 2.0);
    (void)run_experiment(scenario, warm);
  }

  std::vector<Measurement> passes;
  passes.reserve(kRepeats);
  for (int i = 0; i < kRepeats; ++i) {
    const std::uint64_t alloc0 = g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentResult r = run_experiment(scenario, config);
    const auto t1 = std::chrono::steady_clock::now();

    Measurement m;
    m.name = name;
    m.policy = to_string(config.policy);
    m.wall_ms = std::chrono::duration_cast<
                    std::chrono::duration<double, std::milli>>(t1 - t0)
                    .count();
    m.events = r.sim_events;
    m.requests = r.generated;
    m.allocs = g_alloc_count.load(std::memory_order_relaxed) - alloc0;
    m.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
    passes.push_back(m);
  }
  std::sort(passes.begin(), passes.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.wall_ms < b.wall_ms;
            });
  return passes[passes.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Micro", "simulator hot path: events/sec, allocs/request");

  RunConfig config;
  config.duration = 30.0;
  config.warmup = 5.0;
  config.seed = 7;

  std::vector<Measurement> rows;

  {
    TwoClusterChainParams params;
    params.west_rps = 800.0;
    params.east_rps = 100.0;
    const Scenario scenario = make_two_cluster_chain_scenario(params);
    for (PolicyKind policy : {PolicyKind::kWaterfall, PolicyKind::kSlate}) {
      RunConfig c = config;
      c.policy = policy;
      rows.push_back(run_case("chain-2c", scenario, c));
    }
    // Failure semantics exercise the retry/timeout machinery on the same
    // scenario (its allocation profile differs from the fair-weather path).
    RunConfig c = config;
    c.policy = PolicyKind::kSlate;
    c.failure.enabled = true;
    c.failure.call_timeout = 0.5;
    rows.push_back(run_case("chain-2c-failure", scenario, c));
    // Full overload stack armed (bounded queues + CoDel, deadline
    // propagation, breakers): the gates sit on every submit/dispatch, so
    // this run prices the per-event overhead of the protection machinery.
    RunConfig o = c;
    o.overload.queue.max_queue = 64;
    o.overload.queue.codel_target = 0.02;
    o.overload.deadline.enabled = true;
    o.overload.deadline.default_deadline = 0.5;
    o.overload.breaker.enabled = true;
    rows.push_back(run_case("chain-2c-overload", scenario, o));
    // Front-door admission on top of the overload stack, with buckets
    // sized above the offered load: every arrival pays the token-bucket
    // gate and the adaptation loop retunes each control period, but
    // nothing sheds — this prices the gate itself, not the rejections.
    RunConfig a = o;
    a.admission.enabled = true;
    a.admission.default_rate = 900.0;
    rows.push_back(run_case("chain-2c-admission", scenario, a));
    // N-1 headroom armed: every control period pays one simulated reroute
    // per cluster (plus padded re-solves when the margin overflows) — this
    // run prices the contingency check on top of the control loop
    // (docs/resilience.md).
    RunConfig n1 = config;
    n1.policy = PolicyKind::kSlate;
    n1.slate.contingency.enabled = true;
    rows.push_back(run_case("chain-2c-contingency", scenario, n1));
    // Bi-level co-design armed on a priced copy: every control period the
    // coordinator builds the effective-capacity overlay, the LP carries
    // the server-cost term, and the plan pushes back down to the
    // autoscalers — this run prices the full autoscaling x TE loop
    // (docs/autoscaling.md).
    Scenario priced = make_two_cluster_chain_scenario(params);
    priced.topology->set_uniform_server_price(0.10);
    RunConfig bl = config;
    bl.policy = PolicyKind::kSlate;
    bl.autoscaler_enabled = true;
    bl.autoscaler.evaluation_period = 1.0;
    bl.bilevel.enabled = true;
    rows.push_back(run_case("chain-2c-bilevel", priced, bl));
    // Forecast armed on time-varying demand: the piecewise generator steps
    // churn arrival rates every 0.5 s and the Holt-Winters per-cell
    // forecasters + rolling backtest score every control period — this run
    // prices the full predictive pipeline on top of the engine hot path.
    Scenario diurnal = make_two_cluster_chain_scenario(params);
    diurnal.demand = DemandSchedule{};
    DiurnalSpec west;
    west.base = 450.0;
    west.amplitude = 350.0;
    west.period = 10.0;
    west.end = config.duration + west.period;
    west.step = 0.5;
    DiurnalSpec east = west;
    east.phase = west.period / 2.0;
    add_diurnal(diurnal.demand, ClassId{0}, ClusterId{0}, west);
    add_diurnal(diurnal.demand, ClassId{0}, ClusterId{1}, east);
    RunConfig f = config;
    f.policy = PolicyKind::kSlate;
    f.control_period = 1.0;
    f.slate.forecast.kind = ForecastKind::kHoltWinters;
    f.slate.forecast.season =
        static_cast<std::size_t>(west.period / f.control_period);
    rows.push_back(run_case("chain-2c-forecast", diurnal, f));
  }
  {
    Scenario scenario = make_uniform_scenario(
        "social-network", make_social_network_app(), make_gcp_topology(), 2);
    const Application& app = *scenario.app;
    const ClassId read = app.find_class("read-timeline");
    const ClassId write = app.find_class("write-post");
    const ClassId profile = app.find_class("view-profile");
    for (std::size_t c = 0; c < 4; ++c) {
      scenario.demand.set_rate(read, ClusterId{c}, c == 0 ? 700.0 : 80.0);
      scenario.demand.set_rate(write, ClusterId{c}, c == 0 ? 140.0 : 20.0);
      scenario.demand.set_rate(profile, ClusterId{c}, c == 0 ? 220.0 : 40.0);
    }
    RunConfig c = config;
    c.policy = PolicyKind::kSlate;
    rows.push_back(run_case("social-gcp", scenario, c));
    // The same world on the sharded engine: one event loop per latency
    // island, conservative lookahead from the inter-island RTT floor, and
    // the resolve_tolerance gate armed (steady demand should not re-solve
    // every period; the floor keeps sub-128-RPS Poisson noise from forcing
    // one). This is the production configuration for large steady runs.
    RunConfig s = c;
    s.shards = 8;
    s.slate.resolve_tolerance = 0.15;
    s.slate.resolve_floor_rps = 128.0;
    rows.push_back(run_case("social-gcp-sharded", scenario, s));
  }
  {
    // Planet-scale synthetic world (docs/scenario_format.md §topology-synth):
    // 30 clusters x 200 services, sharded. Prices the engine at the paper's
    // motivating scale rather than the hand-written 4-cluster scenarios.
    const Scenario scenario = make_synth_scenario(
        parse_topogen_spec("clusters=30,services=200,seed=11"));
    RunConfig c = config;
    c.policy = PolicyKind::kSlate;
    c.duration = 10.0;
    c.warmup = 2.0;
    c.shards = 8;
    c.slate.resolve_tolerance = 0.15;
    c.slate.resolve_floor_rps = 128.0;
    rows.push_back(run_case("synth-30x200", scenario, c));
  }

  std::printf("%-18s %-12s %10s %12s %14s %12s %12s\n", "case", "policy",
              "wall_ms", "events", "events/sec", "allocs/req", "allocs/evt");
  double total_events = 0.0, total_wall = 0.0;
  for (const Measurement& m : rows) {
    std::printf("%-18s %-12s %10.1f %12llu %14.0f %12.2f %12.3f\n", m.name,
                m.policy, m.wall_ms, static_cast<unsigned long long>(m.events),
                m.events_per_sec(), m.allocs_per_request(), m.allocs_per_event());
    std::printf("data,micro,%s,%s,%.2f,%llu,%.0f,%.3f,%.4f\n", m.name, m.policy,
                m.wall_ms, static_cast<unsigned long long>(m.events),
                m.events_per_sec(), m.allocs_per_request(), m.allocs_per_event());
    total_events += static_cast<double>(m.events);
    total_wall += m.wall_ms;
  }
  std::printf("\naggregate: %.0f events/sec over %.0f ms of engine time\n",
              total_wall > 0 ? total_events / (total_wall / 1e3) : 0.0,
              total_wall);

  // JSON baseline (BENCH_simulator.json at the repo root tracks this).
  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "micro_simulator");
  json.field("duration_s", config.duration);
  json.field("seed", config.seed);
  json.field("repeats", kRepeats);
  json.begin_array("runs");
  for (const Measurement& m : rows) {
    json.begin_object();
    json.field("case", m.name);
    json.field("policy", m.policy);
    json.field("wall_ms", m.wall_ms);
    json.field("events", m.events);
    json.field("requests", m.requests);
    json.field("events_per_sec", m.events_per_sec());
    json.field("allocs", m.allocs);
    json.field("alloc_bytes", m.alloc_bytes);
    json.field("allocs_per_request", m.allocs_per_request());
    json.field("allocs_per_event", m.allocs_per_event());
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const char* out = argc > 1 ? argv[1] : "BENCH_simulator.json";
  if (json.write_file(out)) {
    std::printf("wrote %s\n", out);
  } else {
    std::fprintf(stderr, "failed to write %s\n", out);
    return 1;
  }
  return 0;
}
