// Figure 6d: latency CDF, SLATE vs Waterfall — "which subset of requests to
// route?" (§4.4, Fig. 5d).
//
// One worker service, two traffic classes: L (1ms compute) and H (10ms
// compute, the overload driver). Waterfall thresholds on class-blind RPS
// and offloads the same fraction of both classes; SLATE offloads mostly H
// requests — 10x the capacity relief per network crossing.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  bench::print_header("Figure 6d", "which traffic classes to offload");
  TwoClassParams params;
  const Scenario scenario = make_two_class_scenario(params);
  const ClassId light = scenario.app->find_class("L");
  const ClassId heavy = scenario.app->find_class("H");

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 24;

  const PolicyKind policies[] = {PolicyKind::kWaterfall, PolicyKind::kSlate};
  std::vector<GridJob> jobs;
  for (PolicyKind policy : policies) {
    config.policy = policy;
    jobs.push_back({&scenario, config, to_string(policy)});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);
  for (const auto& r : results) {
    bench::print_summary_row(r);
  }
  for (const auto& r : results) {
    bench::print_cdf(r.policy, r.e2e);
  }

  std::printf("\nper-class offload from West (remote fraction at worker hop):\n");
  std::printf("%-12s %10s %10s\n", "policy", "class L", "class H");
  for (const auto& r : results) {
    std::printf("%-12s %9.1f%% %9.1f%%\n", r.policy.c_str(),
                100 * r.remote_fraction_from(light, 1, ClusterId{0}),
                100 * r.remote_fraction_from(heavy, 1, ClusterId{0}));
    std::printf("data,offload,%s,%.4f,%.4f\n", r.policy.c_str(),
                r.remote_fraction_from(light, 1, ClusterId{0}),
                r.remote_fraction_from(heavy, 1, ClusterId{0}));
  }
  std::printf("\nper-class mean latency (ms):\n");
  std::printf("%-12s %10s %10s\n", "policy", "class L", "class H");
  for (const auto& r : results) {
    std::printf("%-12s %10.2f %10.2f\n", r.policy.c_str(),
                r.e2e_by_class[light.index()].mean() * 1e3,
                r.e2e_by_class[heavy.index()].mean() * 1e3);
  }
  std::printf("\nslate/waterfall mean-latency ratio: %.2fx\n",
              results[0].mean_latency() / results[1].mean_latency());
  return 0;
}
