// Figure 6c: latency CDF + egress cost, SLATE vs locality-failover/Waterfall
// — "where in the topology to route?" (§4.3, Fig. 5c).
//
// Anomaly-detection app FR -> MP -> DB, DB deployed only in East, and the
// DB -> MP response ~10x larger than the MP -> FR response. Baselines cross
// clusters at the forced MP -> DB edge (red arrow), hauling the 1MB metric
// blobs over the WAN. SLATE, seeing the whole tree and the byte sizes, cuts
// at FR -> MP (green arrow) so the big responses stay inside East. The paper
// reports 11.6x less egress cost.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  bench::print_header("Figure 6c", "where to cut the topology (multi-hop)");
  AnomalyParams params;
  params.west_rps = 200.0;
  params.east_rps = 30.0;
  params.rtt = 25e-3;
  const Scenario scenario = make_anomaly_scenario(params);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 23;

  const PolicyKind policies[] = {PolicyKind::kLocalityFailover,
                                 PolicyKind::kWaterfall, PolicyKind::kSlate};
  std::vector<GridJob> jobs;
  for (PolicyKind policy : policies) {
    config.policy = policy;
    if (policy == PolicyKind::kSlate) {
      // The administrator weights egress cost strongly (§4.1): worth ~0.3s
      // of latency-objective per $/s of egress spend.
      config.slate.optimizer.cost_weight = 300.0;
    }
    jobs.push_back({&scenario, config, to_string(policy)});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);
  for (const auto& r : results) {
    bench::print_summary_row(r);
  }
  for (const auto& r : results) {
    bench::print_cdf(r.policy, r.e2e);
  }

  std::printf("\ncut placement (remote fraction per call edge, West traffic):\n");
  std::printf("%-20s %14s %14s\n", "policy", "FR->MP", "MP->DB(West)");
  for (const auto& r : results) {
    std::printf("%-20s %13.1f%% %13.1f%%\n", r.policy.c_str(),
                100 * r.remote_fraction_from(ClassId{0}, 1, ClusterId{0}),
                100 * r.remote_fraction_from(ClassId{0}, 2, ClusterId{0}));
  }

  const double failover_cost = results[0].egress_cost_dollars;
  const double slate_cost = results[2].egress_cost_dollars;
  std::printf("\negress cost: failover $%.5f, waterfall $%.5f, slate $%.5f\n",
              results[0].egress_cost_dollars, results[1].egress_cost_dollars,
              results[2].egress_cost_dollars);
  std::printf("egress cost reduction vs locality failover: %.1fx "
              "(paper reports 11.6x)\n",
              failover_cost / slate_cost);
  std::printf("data,egress_ratio,%.2f\n", failover_cost / slate_cost);
  return 0;
}
