// Microbenchmark: optimizer solve time vs problem size (paper §5,
// "Scalability & Fast reaction": optimization cost grows with the number of
// clusters, services, and traffic classes; seconds-scale solve times are
// the requirement).
#include <benchmark/benchmark.h>

#include "app/builders.h"
#include "core/optimizer.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

namespace slate {
namespace {

// Chain app with `services` stages deployed on `clusters` clusters.
void BM_OptimizerClusters(benchmark::State& state) {
  const std::size_t clusters = static_cast<std::size_t>(state.range(0));
  LinearChainOptions app_options;
  app_options.chain_length = 3;
  Scenario scenario =
      make_uniform_scenario("scale", make_linear_chain_app(app_options),
                            make_line_topology(clusters, 10e-3), 2);
  FlatMatrix<double> demand(1, clusters, 0.0);
  for (std::size_t c = 0; c < clusters; ++c) demand(0, c) = 400.0;

  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model =
      LatencyModel::from_application(*scenario.app, clusters);
  int vars = 0;
  for (auto _ : state) {
    const OptimizerResult result = optimizer.optimize(model, demand);
    benchmark::DoNotOptimize(result);
    vars = result.variables;
  }
  state.counters["lp_vars"] = vars;
}
BENCHMARK(BM_OptimizerClusters)->Arg(2)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizerServices(benchmark::State& state) {
  const std::size_t chain = static_cast<std::size_t>(state.range(0));
  LinearChainOptions app_options;
  app_options.chain_length = chain;
  Scenario scenario =
      make_uniform_scenario("scale", make_linear_chain_app(app_options),
                            make_line_topology(4, 10e-3), 2);
  FlatMatrix<double> demand(1, 4, 0.0);
  for (std::size_t c = 0; c < 4; ++c) demand(0, c) = 400.0;

  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(*scenario.app, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(model, demand));
  }
}
BENCHMARK(BM_OptimizerServices)->Arg(2)->Arg(6)->Arg(12)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizerClasses(benchmark::State& state) {
  // Many classes sharing one worker service behind an ingress.
  const std::size_t classes = static_cast<std::size_t>(state.range(0));
  Application app;
  const ServiceId ingress = app.add_service("ingress");
  const ServiceId worker = app.add_service("worker");
  for (std::size_t k = 0; k < classes; ++k) {
    TrafficClassSpec spec;
    spec.name = "class-" + std::to_string(k);
    spec.attributes.path = "/api/" + std::to_string(k);
    const std::size_t root = spec.graph.set_root(ingress, 0.1e-3, 512, 512);
    spec.graph.add_call(root, worker, 1e-3 * static_cast<double>(1 + k % 5),
                        512, 2048);
    app.add_class(std::move(spec));
  }
  Scenario scenario = make_uniform_scenario(
      "classes", std::move(app), make_line_topology(4, 10e-3), 4);
  FlatMatrix<double> demand(classes, 4, 0.0);
  for (std::size_t k = 0; k < classes; ++k) {
    for (std::size_t c = 0; c < 4; ++c) demand(k, c) = 50.0;
  }
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(*scenario.app, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(model, demand));
  }
}
BENCHMARK(BM_OptimizerClasses)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slate

BENCHMARK_MAIN();
