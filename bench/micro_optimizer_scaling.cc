// Solve time vs. topology size, one row per (synthesized world, solver arm).
//
// The paper's control loop runs on a period measured in seconds; the solve
// has to fit inside it on planet-scale worlds (tens of clusters, hundreds
// of services). This harness generates worlds along that curve with the
// topogen subsystem and times every solver arm on each:
//
//   exact_cold   full two-phase LP, no cross-period state
//   exact_warm   LP warm-started from the previous period's cache, on a
//                2% demand perturbation (the steady-state memo is deliberately
//                defeated so the basis path is what gets timed)
//   ripup        negotiated-congestion rip-up-and-reroute heuristic
//   fast         marginal-cost descent heuristic
//
// Each arm also reports its optimality gap against the exact solve on the
// same demand, scored with the shared plan evaluator (core/plan_eval.h), so
// the speed/quality tradeoff is one table.
//
//   $ ./bench/micro_optimizer_scaling [output.json] [max_clusters]
//
// Writes the committed-baseline JSON format consumed by
// tools/check_bench_regression.py (metric: solves_per_sec). `max_clusters`
// caps the case list for CI smoke runs (e.g. 20 skips the 30x200 world).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fast_optimizer.h"
#include "core/latency_model.h"
#include "core/optimizer.h"
#include "core/plan_eval.h"
#include "core/ripup_optimizer.h"
#include "topogen/topogen.h"

namespace slate {
namespace {

struct Case {
  std::size_t clusters;
  std::size_t services;
  std::size_t classes;
};

struct Row {
  std::string case_name;
  std::string arm;
  double solve_seconds = 0.0;
  double solves_per_sec = 0.0;
  double gap_pct = 0.0;
  bool warm = false;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Demand matrix the generated world offers at t=0 (what the controller
// would estimate at steady state).
FlatMatrix<double> demand_at_start(const Scenario& scenario) {
  FlatMatrix<double> demand(scenario.app->class_count(),
                            scenario.topology->cluster_count(), 0.0);
  for (const auto& stream : scenario.demand.streams()) {
    demand(stream.cls.index(), stream.cluster.index()) +=
        scenario.demand.rate_at(stream.cls, stream.cluster, 0.0);
  }
  return demand;
}

// Times `solve` by repetition: at least `min_reps` runs and at least
// `min_total` seconds, reporting the BEST rep. Minimum-of-N is the
// noise-robust microbenchmark statistic — a loaded machine only ever adds
// time, so the fastest rep is the closest estimate of the true cost, and
// it is what keeps the committed baseline comparable across runs. Every
// rep's result feeds the gap computation through `keep` so the work cannot
// be optimized away.
template <typename Solve>
double time_arm(Solve&& solve, OptimizerResult* keep, int min_reps = 5,
                double min_total = 0.5) {
  int reps = 0;
  const double t0 = now_seconds();
  double elapsed = 0.0;
  double best = 0.0;
  do {
    const double rep_t0 = now_seconds();
    *keep = solve(reps);
    const double rep_s = now_seconds() - rep_t0;
    if (reps == 0 || rep_s < best) best = rep_s;
    ++reps;
    elapsed = now_seconds() - t0;
  } while (reps < min_reps || elapsed < min_total);
  return best;
}

double gap_pct(double arm_cost, double exact_cost) {
  if (exact_cost <= 0.0) return 0.0;
  return (arm_cost - exact_cost) / exact_cost * 100.0;
}

}  // namespace
}  // namespace slate

int main(int argc, char** argv) {
  using namespace slate;

  const char* out_path = argc > 1 ? argv[1] : nullptr;
  const std::size_t max_clusters =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : SIZE_MAX;

  const std::vector<Case> cases = {
      {5, 20, 4}, {10, 50, 8}, {20, 100, 8}, {30, 200, 12}};

  std::vector<Row> rows;
  std::printf("%-14s %-10s %12s %14s %9s\n", "case", "arm", "solve_ms",
              "solves_per_s", "gap_pct");
  for (const Case& c : cases) {
    if (c.clusters > max_clusters) {
      std::printf("# skipping c%zu-s%zu-k%zu (max_clusters=%zu)\n", c.clusters,
                  c.services, c.classes, max_clusters);
      continue;
    }
    TopoGenOptions options;
    options.seed = 11;
    options.clusters = c.clusters;
    options.services = c.services;
    options.classes = c.classes;
    options.total_rps = 100.0 * static_cast<double>(c.clusters);
    const Scenario scenario = make_synth_scenario(options);
    const std::string case_name = "c" + std::to_string(c.clusters) + "-s" +
                                  std::to_string(c.services) + "-k" +
                                  std::to_string(c.classes);

    const LatencyModel model = LatencyModel::from_application(
        *scenario.app, scenario.topology->cluster_count());
    const FlatMatrix<double> demand = demand_at_start(scenario);
    // The perturbed demand the warm arm solves: close enough to reuse the
    // basis, different enough (per rep) to defeat the steady-state memo.
    auto perturbed = [&](int rep) {
      FlatMatrix<double> d = demand;
      const double scale = 1.02 + 1e-7 * static_cast<double>(rep);
      for (std::size_t k = 0; k < d.rows(); ++k) {
        for (std::size_t i = 0; i < d.cols(); ++i) d(k, i) *= scale;
      }
      return d;
    };

    const RouteOptimizer exact(*scenario.app, *scenario.deployment,
                               *scenario.topology);
    const FastRouteOptimizer fast(*scenario.app, *scenario.deployment,
                                  *scenario.topology);
    const RipupRouteOptimizer ripup(*scenario.app, *scenario.deployment,
                                    *scenario.topology);

    auto plan_cost = [&](const OptimizerResult& r,
                         const FlatMatrix<double>& d) {
      return evaluate_plan_cost(*scenario.app, *scenario.deployment,
                                *scenario.topology, model, d, *r.rules);
    };

    OptimizerResult cold_result;
    const double cold_s =
        time_arm([&](int) { return exact.optimize(model, demand); },
                 &cold_result);
    if (!cold_result.ok()) {
      std::fprintf(stderr, "%s: exact solve failed\n", case_name.c_str());
      return 1;
    }
    const double exact_cost = plan_cost(cold_result, demand);

    // Exact solve of the perturbed demand scores the warm arm's gap.
    const OptimizerResult exact_perturbed =
        exact.optimize(model, perturbed(0));
    const double exact_perturbed_cost =
        plan_cost(exact_perturbed, perturbed(0));

    OptimizerCache cache;
    exact.optimize(model, demand, nullptr, &cache);  // prime the basis
    OptimizerResult warm_result;
    const double warm_s = time_arm(
        [&](int rep) {
          return exact.optimize(model, perturbed(rep), nullptr, &cache);
        },
        &warm_result);

    OptimizerResult ripup_result;
    const double ripup_s =
        time_arm([&](int) { return ripup.optimize(model, demand); },
                 &ripup_result);
    OptimizerResult fast_result;
    const double fast_s = time_arm(
        [&](int) { return fast.optimize(model, demand); }, &fast_result);

    const Row case_rows[] = {
        {case_name, "exact_cold", cold_s, 1.0 / cold_s, 0.0, false},
        {case_name, "exact_warm", warm_s, 1.0 / warm_s,
         gap_pct(plan_cost(warm_result, perturbed(0)), exact_perturbed_cost),
         warm_result.warm_started},
        {case_name, "ripup", ripup_s, 1.0 / ripup_s,
         gap_pct(plan_cost(ripup_result, demand), exact_cost), false},
        {case_name, "fast", fast_s, 1.0 / fast_s,
         gap_pct(plan_cost(fast_result, demand), exact_cost), false},
    };
    for (const Row& row : case_rows) {
      std::printf("%-14s %-10s %12.3f %14.2f %8.2f%%%s\n",
                  row.case_name.c_str(), row.arm.c_str(),
                  row.solve_seconds * 1e3, row.solves_per_sec, row.gap_pct,
                  row.warm ? "  (warm)" : "");
      rows.push_back(row);
    }
  }

  if (out_path != nullptr) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"micro_optimizer_scaling\",\n");
    std::fprintf(out, "  \"runs\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "    {\"case\": \"%s\", \"policy\": \"%s\", "
                   "\"solve_seconds\": %.6f, \"solves_per_sec\": %.3f, "
                   "\"gap_pct\": %.3f}%s\n",
                   r.case_name.c_str(), r.arm.c_str(), r.solve_seconds,
                   r.solves_per_sec, r.gap_pct,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %zu runs to %s\n", rows.size(), out_path);
  }
  return 0;
}
