// Figure 6b: latency CDF, SLATE vs Waterfall — "which clusters to route
// to?" (§4.2, Fig. 5b).
//
// Real GCP topology (OR, UT, IOW, SC with the paper's measured RTTs). OR
// and IOW are overloaded; UT is the nearest cluster to both, so greedy
// capacity-based offloading floods it while leaving the farther SC cluster
// idle. SLATE's global optimization spreads overflow across UT *and* SC.
#include <cstdio>

#include "bench_util.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  bench::print_header("Figure 6b", "which cluster to offload to (GCP topology)");
  GcpChainParams params;
  params.rps[0] = 800.0;  // OR overloaded
  params.rps[1] = 100.0;  // UT light
  params.rps[2] = 800.0;  // IOW overloaded
  params.rps[3] = 100.0;  // SC light
  params.servers[0] = 1;
  params.servers[1] = 2;
  params.servers[2] = 1;
  params.servers[3] = 2;
  const Scenario scenario = make_gcp_chain_scenario(params);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 22;

  const PolicyKind policies[] = {PolicyKind::kWaterfall, PolicyKind::kSlate};
  std::vector<GridJob> jobs;
  for (PolicyKind policy : policies) {
    config.policy = policy;
    jobs.push_back({&scenario, config, to_string(policy)});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);
  for (const auto& r : results) {
    bench::print_summary_row(r);
  }
  for (const auto& r : results) {
    bench::print_cdf(r.policy, r.e2e);
  }

  // Where did each policy send OR's and IOW's overflow (svc-1 hop)?
  std::printf("\nsvc-1 call placement (share of calls served per cluster):\n");
  std::printf("%-12s %8s %8s %8s %8s\n", "policy", "OR", "UT", "IOW", "SC");
  for (const auto& r : results) {
    const auto& m = r.flows[0][1];
    double total = 0.0;
    double per[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        per[j] += static_cast<double>(m(i, j));
        total += static_cast<double>(m(i, j));
      }
    }
    std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", r.policy.c_str(),
                100 * per[0] / total, 100 * per[1] / total, 100 * per[2] / total,
                100 * per[3] / total);
    std::printf("data,placement,%s,%.4f,%.4f,%.4f,%.4f\n", r.policy.c_str(),
                per[0] / total, per[1] / total, per[2] / total, per[3] / total);
  }
  std::printf("\nslate/waterfall mean-latency ratio: %.2fx\n",
              results[0].mean_latency() / results[1].mean_latency());
  return 0;
}
