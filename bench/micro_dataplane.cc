// Microbenchmark: data-plane critical-path costs (paper §3.1: "the routing
// execution logic should be simple and heavily optimized since it is in the
// critical path of request processing"; §5 scalability: low-overhead data
// plane).
#include <benchmark/benchmark.h>

#include "core/traffic_classifier.h"
#include "net/gcp_topology.h"
#include "routing/locality_failover.h"
#include "routing/waterfall.h"
#include "routing/weighted_rules.h"
#include "app/builders.h"
#include "cluster/deployment.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace slate {
namespace {

// One weighted-rules routing decision: hash lookup + weighted draw.
void BM_WeightedRulesRoute(benchmark::State& state) {
  const Topology topo = make_gcp_topology();
  WeightedRulesPolicy policy(topo);
  auto rules = std::make_shared<RoutingRuleSet>();
  RouteWeights w;
  w.clusters = topo.all_clusters();
  w.weights = {0.55, 0.25, 0.15, 0.05};
  for (std::uint32_t k = 0; k < 4; ++k) {
    for (std::size_t n = 1; n <= 3; ++n) {
      for (std::uint32_t c = 0; c < 4; ++c) {
        rules->set_rule(ClassId{k}, n, ClusterId{c}, w);
      }
    }
  }
  policy.update_rules(rules);

  const std::vector<ClusterId> candidates = topo.all_clusters();
  RouteQuery query;
  query.cls = ClassId{1};
  query.call_node = 2;
  query.child_service = ServiceId{1};
  query.from = ClusterId{0};
  query.candidates = &candidates;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.route(query, rng));
  }
}
BENCHMARK(BM_WeightedRulesRoute);

void BM_WeightedRulesFallback(benchmark::State& state) {
  const Topology topo = make_gcp_topology();
  WeightedRulesPolicy policy(topo);  // no rules: locality-failover path
  const std::vector<ClusterId> candidates = topo.all_clusters();
  RouteQuery query;
  query.cls = ClassId{0};
  query.call_node = 1;
  query.child_service = ServiceId{1};
  query.from = ClusterId{0};
  query.candidates = &candidates;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.route(query, rng));
  }
}
BENCHMARK(BM_WeightedRulesFallback);

void BM_WaterfallRoute(benchmark::State& state) {
  const Topology topo = make_gcp_topology();
  const Application app = make_linear_chain_app();
  Deployment deployment(app, 4);
  deployment.deploy_everywhere(1, 500.0);

  class ConstLoad final : public LoadView {
   public:
    double load_rps(ServiceId, ClusterId) const override { return 600.0; }
  } loads;

  WaterfallPolicy policy(topo, deployment, loads);
  const std::vector<ClusterId> candidates = topo.all_clusters();
  RouteQuery query;
  query.cls = ClassId{0};
  query.call_node = 1;
  query.child_service = app.find_service("svc-1");
  query.from = ClusterId{0};
  query.candidates = &candidates;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.route(query, rng));
  }
}
BENCHMARK(BM_WaterfallRoute);

void BM_ClassifierHit(benchmark::State& state) {
  const Application app = make_two_class_app();
  TrafficClassifier classifier = TrafficClassifier::from_application(app);
  const ServiceId entry = app.entry_service(ClassId{0});
  const RequestAttributes& attrs = app.traffic_class(ClassId{0}).attributes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(entry, attrs));
  }
}
BENCHMARK(BM_ClassifierHit);

void BM_TelemetryRecordPair(benchmark::State& state) {
  MetricsRegistry registry(8, 8);
  double now = 0.0;
  Span span;
  span.exclusive_time = 1e-3;
  for (auto _ : state) {
    now += 1e-4;
    registry.record_start(ServiceId{3}, ClassId{2}, now);
    registry.record_end(ServiceId{3}, ClassId{2}, 1.2e-3, 1e-3);
  }
}
BENCHMARK(BM_TelemetryRecordPair);

}  // namespace
}  // namespace slate

BENCHMARK_MAIN();
