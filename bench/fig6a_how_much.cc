// Figure 6a: latency CDF, SLATE vs Waterfall — "how much to route to
// remote clusters?" (§4.1).
//
// West overloaded (800 RPS against ~475 RPS capacity), East at 100 RPS,
// RTT 25 ms. Waterfall keeps everything below its static RPS threshold
// local — pinning West at ~95% utilization, deep in the queueing blow-up —
// and spills the rest. SLATE offloads exactly as much as improves latency.
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  bench::print_header("Figure 6a", "how much to offload (latency CDF)");
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  params.east_rps = 100.0;
  params.rtt = 25e-3;
  const Scenario scenario = make_two_cluster_chain_scenario(params);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 21;

  const PolicyKind policies[] = {PolicyKind::kWaterfall, PolicyKind::kSlate};
  std::vector<GridJob> jobs;
  for (PolicyKind policy : policies) {
    config.policy = policy;
    jobs.push_back({&scenario, config, to_string(policy)});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);
  for (const auto& r : results) {
    bench::print_summary_row(r);
  }
  for (const auto& r : results) {
    bench::print_cdf(r.policy, r.e2e);
  }
  std::printf("\nslate/waterfall mean-latency ratio: %.2fx\n",
              results[0].mean_latency() / results[1].mean_latency());
  std::printf(
      "west svc-1 traffic kept local: waterfall %.0f%%, slate %.0f%%\n",
      100.0 * (1.0 - results[0].remote_fraction_from(ClassId{0}, 1, ClusterId{0})),
      100.0 * (1.0 - results[1].remote_fraction_from(ClassId{0}, 1, ClusterId{0})));
  return 0;
}
