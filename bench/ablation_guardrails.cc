// Ablation: resilience to prediction error (paper §5).
//
// We inject a wrong latency model (every service time scaled by a factor)
// into SLATE's global controller with online re-fitting disabled, so the
// optimizer plans against systematically bad predictions. Compared
// configurations:
//   * unguarded  — rules applied at full step every period;
//   * guarded    — incremental steps + live-objective revert (§5's sketch);
//   * refit      — misprediction present initially but online fitting on
//                  (the deployed configuration).
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

ExperimentResult run(double model_scale, bool guardrails, bool refit) {
  TwoClusterChainParams params;
  params.west_rps = 700.0;
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 60.0;
  config.warmup = 20.0;
  config.seed = 41;
  config.slate.initial_model_scale = model_scale;
  config.slate.freeze_model = !refit;
  config.slate.guardrails.enabled = guardrails;
  config.slate.guardrails.step_fraction = 0.3;
  return run_experiment(scenario, config);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "guardrails under model misprediction (§5)");
  std::printf("%-12s %-22s %14s %12s %10s\n", "model_scale", "configuration",
              "mean (ms)", "p99 (ms)", "reverts");
  for (double scale : {1.0, 4.0, 0.25}) {
    struct Config {
      const char* name;
      bool guarded;
      bool refit;
    };
    const Config configs[] = {{"unguarded, frozen", false, false},
                              {"guarded, frozen", true, false},
                              {"unguarded, refit", false, true}};
    for (const auto& cfg : configs) {
      const ExperimentResult r = run(scale, cfg.guarded, cfg.refit);
      std::printf("%-12.2f %-22s %14.2f %12.2f %10llu\n", scale, cfg.name,
                  r.mean_latency() * 1e3, r.p99() * 1e3,
                  static_cast<unsigned long long>(r.controller_reverts));
      std::printf("data,guardrails,%.2f,%s,%.3f,%.3f,%llu\n", scale, cfg.name,
                  r.mean_latency() * 1e3, r.p99() * 1e3,
                  static_cast<unsigned long long>(r.controller_reverts));
    }
  }
  std::printf(
      "\nreading: with an exact model (scale 1) all configurations agree.\n"
      "Pessimistic misprediction (scale 4: services look slower than they\n"
      "are) causes mild over-offloading. Optimistic misprediction (scale\n"
      "0.25: the model believes capacity is ample) is the dangerous case -\n"
      "the optimizer never proposes offloading, the local cluster melts\n"
      "down, and guardrails cannot help because there is no bad *change* to\n"
      "revert; only online re-fitting (the deployed configuration) recovers.\n"
      "This sharpens the paper's §5 point: incremental-apply-and-verify\n"
      "bounds damage from wrong shifts, but model re-learning is what\n"
      "handles wrong models.\n");
  return 0;
}
