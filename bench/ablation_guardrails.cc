// Ablation: resilience to prediction error (paper §5).
//
// We inject a wrong latency model (every service time scaled by a factor)
// into SLATE's global controller with online re-fitting disabled, so the
// optimizer plans against systematically bad predictions. Compared
// configurations:
//   * unguarded  — rules applied at full step every period;
//   * guarded    — incremental steps + live-objective revert (§5's sketch);
//   * refit      — misprediction present initially but online fitting on
//                  (the deployed configuration).
#include <cstdio>

#include "bench_util.h"
#include "runtime/scenarios.h"

using namespace slate;

namespace {

struct Variant {
  double scale;
  const char* name;
  bool guarded;
  bool refit;
};

}  // namespace

int main() {
  bench::print_header("Ablation", "guardrails under model misprediction (§5)");

  TwoClusterChainParams params;
  params.west_rps = 700.0;
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);

  std::vector<Variant> variants;
  for (double scale : {1.0, 4.0, 0.25}) {
    variants.push_back({scale, "unguarded, frozen", false, false});
    variants.push_back({scale, "guarded, frozen", true, false});
    variants.push_back({scale, "unguarded, refit", false, true});
  }
  std::vector<GridJob> jobs;
  for (const Variant& v : variants) {
    RunConfig config;
    config.policy = PolicyKind::kSlate;
    config.duration = 60.0;
    config.warmup = 20.0;
    config.seed = 41;
    config.slate.initial_model_scale = v.scale;
    config.slate.freeze_model = !v.refit;
    config.slate.guardrails.enabled = v.guarded;
    config.slate.guardrails.step_fraction = 0.3;
    jobs.push_back({&scenario, config, v.name});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("%-12s %-22s %14s %12s %10s\n", "model_scale", "configuration",
              "mean (ms)", "p99 (ms)", "reverts");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const ExperimentResult& r = results[i];
    std::printf("%-12.2f %-22s %14.2f %12.2f %10llu\n", v.scale, v.name,
                r.mean_latency() * 1e3, r.p99() * 1e3,
                static_cast<unsigned long long>(r.controller_reverts));
    std::printf("data,guardrails,%.2f,%s,%.3f,%.3f,%llu\n", v.scale, v.name,
                r.mean_latency() * 1e3, r.p99() * 1e3,
                static_cast<unsigned long long>(r.controller_reverts));
  }
  std::printf(
      "\nreading: with an exact model (scale 1) all configurations agree.\n"
      "Pessimistic misprediction (scale 4: services look slower than they\n"
      "are) causes mild over-offloading. Optimistic misprediction (scale\n"
      "0.25: the model believes capacity is ample) is the dangerous case -\n"
      "the optimizer never proposes offloading, the local cluster melts\n"
      "down, and guardrails cannot help because there is no bad *change* to\n"
      "revert; only online re-fitting (the deployed configuration) recovers.\n"
      "This sharpens the paper's §5 point: incremental-apply-and-verify\n"
      "bounds damage from wrong shifts, but model re-learning is what\n"
      "handles wrong models.\n");
  return 0;
}
