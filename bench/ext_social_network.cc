// Extension experiment: generality beyond the paper's microbenchmarks.
//
// The paper's introduction motivates SLATE with production-scale apps
// ("tens or hundreds of microservices", "trees of endpoint API calls").
// This bench runs the 8-service, 3-class social-network app (parallel
// fan-out, fractional sub-calls, 50KB media responses) on the real GCP
// topology with one hot region, comparing every policy in the library.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  bench::print_header("Extension", "social-network app on the GCP topology");

  // SLATE_SHARDS=<n> runs every job on the sharded engine with up to n
  // workers (0 / unset = legacy serial engine). Results are byte-identical
  // across worker counts, so CI's TSan smoke uses this to race-test the
  // exact workload measured here.
  std::size_t shards = 0;
  if (const char* env = std::getenv("SLATE_SHARDS")) {
    shards = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    std::printf("sharded engine: SLATE_SHARDS=%zu\n", shards);
  }

  Scenario scenario = make_uniform_scenario(
      "social-network", make_social_network_app(), make_gcp_topology(), 2);
  // OR is the hot region (think: US-West evening peak).
  const Application& app = *scenario.app;
  const ClassId read = app.find_class("read-timeline");
  const ClassId write = app.find_class("write-post");
  const ClassId profile = app.find_class("view-profile");
  const ClusterId orc{0}, ut{1}, iow{2}, sc{3};
  scenario.demand.set_rate(read, orc, 700.0);
  scenario.demand.set_rate(write, orc, 140.0);
  scenario.demand.set_rate(profile, orc, 220.0);
  for (ClusterId c : {ut, iow, sc}) {
    scenario.demand.set_rate(read, c, 80.0);
    scenario.demand.set_rate(write, c, 20.0);
    scenario.demand.set_rate(profile, c, 40.0);
  }

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 71;
  config.shards = shards;

  // Five policies, one grid job each.
  std::vector<GridJob> jobs;
  for (PolicyKind policy :
       {PolicyKind::kLocalityFailover, PolicyKind::kRoundRobin,
        PolicyKind::kStaticWeights, PolicyKind::kWaterfall,
        PolicyKind::kSlate}) {
    config.policy = policy;
    jobs.push_back({&scenario, config, to_string(policy)});
  }
  const std::vector<ExperimentResult> results = bench::run_grid(jobs);

  std::printf("%-20s %10s %10s %10s | %10s %10s %10s\n", "policy", "mean",
              "p95", "p99", "read", "write", "profile");
  ExperimentResult best_baseline, slate;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const PolicyKind policy = jobs[i].config.policy;
    const ExperimentResult& r = results[i];
    std::printf("%-20s %8.2fms %8.2fms %8.2fms | %8.2fms %8.2fms %8.2fms\n",
                r.policy.c_str(), r.mean_latency() * 1e3, r.p95() * 1e3,
                r.p99() * 1e3, r.e2e_by_class[read.index()].mean() * 1e3,
                r.e2e_by_class[write.index()].mean() * 1e3,
                r.e2e_by_class[profile.index()].mean() * 1e3);
    std::printf("data,social,%s,%.3f,%.3f,%.3f\n", r.policy.c_str(),
                r.mean_latency() * 1e3, r.p95() * 1e3, r.p99() * 1e3);
    if (policy == PolicyKind::kWaterfall) best_baseline = r;
    if (policy == PolicyKind::kSlate) slate = r;
  }
  std::printf("\nslate vs waterfall: %.2fx mean latency, %.2fx egress cost\n",
              best_baseline.mean_latency() / slate.mean_latency(),
              slate.egress_cost_dollars > 0
                  ? best_baseline.egress_cost_dollars / slate.egress_cost_dollars
                  : 0.0);
  std::printf(
      "\nreading: class-aware, multi-hop optimization generalizes past the\n"
      "paper's 3-service chains — the heavy parallel-fanout read class is\n"
      "steered independently of cheap profile reads.\n");
  return 0;
}
