#!/usr/bin/env python3
"""Compare a fresh bench run against its committed perf baseline.

Usage:
    check_bench_regression.py CURRENT.json [BASELINE.json] [--threshold=0.25]
        [--alloc-threshold=0.10]

Exits non-zero if any (case, policy) run's throughput metric regressed by
more than the threshold fraction relative to the baseline
(BENCH_simulator.json at the repo root by default). The metric is whichever
rate field the run carries: events_per_sec (micro_simulator) or
solves_per_sec (micro_optimizer_scaling) — so one gate covers both the
engine bench and the solver solve-time curve. Faster-than-baseline results
are reported but never fail the check — CI machines vary; a >25% throughput
drop on the same machine class is a real regression, not noise.

Allocation pressure is gated separately and more tightly: when both sides
carry allocs_per_request, the check fails if the current run allocates more
than (1 + alloc_threshold) times the baseline per request. The counting
allocator is deterministic for a fixed seed — unlike wall time, an
allocs/request increase is a code change, not machine noise, so the default
headroom is only 10%.

New cases missing from the baseline are reported and skipped. Baseline
cases missing from the current run get one grace period: the first
absence is a warning recorded in a state file next to the baseline
(<baseline>.missing), so a bench binary that drops or renames a case
mid-refactor shows up loudly without blocking the change that caused it —
but the *next* run that still lacks the case fails, so a dropped case
cannot silently rot out of the gate. A run where the case reappears (or
the baseline is regenerated) clears the record. Regenerate the baseline
with `./bench/micro_simulator BENCH_simulator.json` to re-pin the case
set.
"""

import json
import pathlib
import sys


def load_missing_state(state_path):
    """Case/policy pairs recorded missing by the previous run."""
    try:
        with open(state_path) as f:
            return {tuple(entry) for entry in json.load(f)}
    except (OSError, ValueError):
        return set()


def store_missing_state(state_path, missing):
    if missing:
        with open(state_path, "w") as f:
            json.dump(sorted(list(k) for k in missing), f, indent=2)
            f.write("\n")
    else:
        pathlib.Path(state_path).unlink(missing_ok=True)


METRIC_KEYS = ("events_per_sec", "solves_per_sec")


def metric_of(run, path):
    for key in METRIC_KEYS:
        if key in run:
            return run[key]
    sys.exit(
        f"error: run {run.get('case')}/{run.get('policy')} in {path} has "
        f"none of {METRIC_KEYS}"
    )


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for run in doc.get("runs", []):
        runs[(run["case"], run["policy"])] = run
    if not runs:
        sys.exit(f"error: no runs in {path}")
    return runs


def main(argv):
    threshold = 0.25
    alloc_threshold = 0.10
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--alloc-threshold="):
            alloc_threshold = float(arg.split("=", 1)[1])
        else:
            positional.append(arg)
    if not 1 <= len(positional) <= 2:
        sys.exit(__doc__.strip())

    current_path = positional[0]
    baseline_path = (
        positional[1]
        if len(positional) == 2
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
    )

    current = load_runs(current_path)
    baseline = load_runs(baseline_path)
    state_path = str(baseline_path) + ".missing"
    previously_missing = load_missing_state(state_path)
    missing_now = set()

    failures = []
    warnings = []
    header = (
        f"    {'case/policy':28s} {'base rate':>12s} {'cur rate':>12s} "
        f"{'delta':>8s} {'allocs/evt':>16s}"
    )
    print(header)
    print("    " + "-" * (len(header) - 4))
    for key, base in sorted(baseline.items()):
        name = f"{key[0]}/{key[1]}"
        cur = current.get(key)
        if cur is None:
            missing_now.add(key)
            if key in previously_missing:
                failures.append(
                    f"{name}: in baseline but missing from the current run "
                    f"for the second consecutive check — regenerate the "
                    f"baseline or restore the case"
                )
                print(
                    f"REG {name:28s} {metric_of(base, baseline_path):12,.0f} "
                    f"{'-':>12s}"
                )
            else:
                warnings.append(
                    f"{name}: in baseline but missing from the current run "
                    f"(recorded; a second consecutive absence fails)"
                )
                print(
                    f"WRN {name:28s} {metric_of(base, baseline_path):12,.0f} "
                    f"{'-':>12s}"
                )
            continue
        base_eps = metric_of(base, baseline_path)
        cur_eps = metric_of(cur, current_path)
        delta = (cur_eps - base_eps) / base_eps
        marker = "OK "
        if delta < -threshold:
            marker = "REG"
            failures.append(
                f"{name}: rate {cur_eps:,.0f}/s vs baseline "
                f"{base_eps:,.0f}/s ({delta:+.1%} < -{threshold:.0%})"
            )
        alloc_note = f"{'-':>16s}"
        if "allocs_per_event" in base and "allocs_per_event" in cur:
            alloc_note = (
                f"{base['allocs_per_event']:7.3f} ->"
                f"{cur['allocs_per_event']:6.3f}"
            )
        base_apr = base.get("allocs_per_request")
        cur_apr = cur.get("allocs_per_request")
        if base_apr and cur_apr is not None:
            if cur_apr > base_apr * (1.0 + alloc_threshold):
                marker = "REG"
                failures.append(
                    f"{name}: allocs/request {cur_apr:.2f} vs baseline "
                    f"{base_apr:.2f} (+{(cur_apr - base_apr) / base_apr:.1%} > "
                    f"{alloc_threshold:.0%})"
                )
        print(
            f"{marker} {name:28s} {base_eps:12,.0f} {cur_eps:12,.0f} "
            f"{delta:+8.1%} {alloc_note}"
        )

    for key in sorted(set(current) - set(baseline)):
        cur = current[key]
        name = f"{key[0]}/{key[1]}"
        print(
            f"NEW {name:28s} {'-':>12s} {metric_of(cur, current_path):12,.0f} "
            f"{'-':>8s} (not in baseline, skipped)"
        )

    store_missing_state(state_path, missing_now)

    if warnings:
        print(f"\n{len(warnings)} warning(s) (non-fatal):")
        for w in warnings:
            print(f"  {w}")
    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond {threshold:.0%}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nall compared runs within {threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
